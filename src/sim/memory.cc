#include "sim/memory.hh"

#include "base/logging.hh"

namespace mbias::sim
{

SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    auto it = pages_.find(addr / page_bytes);
    return it == pages_.end() ? nullptr : &it->second;
}

SparseMemory::Page &
SparseMemory::touchPage(Addr addr)
{
    Page &p = pages_[addr / page_bytes];
    if (p.empty())
        p.assign(page_bytes, 0);
    return p;
}

std::uint64_t
SparseMemory::read(Addr addr, unsigned size) const
{
    mbias_assert(size == 1 || size == 2 || size == 4 || size == 8,
                 "bad access size ", size);
    std::uint64_t v = 0;
    // Fast path: access within one page.
    const std::uint64_t off = addr % page_bytes;
    if (off + size <= page_bytes) {
        const Page *p = findPage(addr);
        if (!p)
            return 0;
        for (unsigned i = 0; i < size; ++i)
            v |= std::uint64_t((*p)[off + i]) << (8 * i);
        return v;
    }
    for (unsigned i = 0; i < size; ++i) {
        const Page *p = findPage(addr + i);
        const std::uint8_t b =
            p ? (*p)[(addr + i) % page_bytes] : std::uint8_t(0);
        v |= std::uint64_t(b) << (8 * i);
    }
    return v;
}

void
SparseMemory::write(Addr addr, unsigned size, std::uint64_t value)
{
    mbias_assert(size == 1 || size == 2 || size == 4 || size == 8,
                 "bad access size ", size);
    const std::uint64_t off = addr % page_bytes;
    if (off + size <= page_bytes) {
        Page &p = touchPage(addr);
        for (unsigned i = 0; i < size; ++i)
            p[off + i] = std::uint8_t(value >> (8 * i));
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        touchPage(addr + i)[(addr + i) % page_bytes] =
            std::uint8_t(value >> (8 * i));
}

void
SparseMemory::writeBlock(Addr addr, const std::vector<std::uint8_t> &bytes)
{
    for (std::size_t i = 0; i < bytes.size(); ++i)
        touchPage(addr + i)[(addr + i) % page_bytes] = bytes[i];
}

std::uint8_t *
SparseMemory::pageData(Addr addr)
{
    return touchPage(addr).data();
}

const std::uint8_t *
SparseMemory::pageDataIfPresent(Addr addr) const
{
    const Page *p = findPage(addr);
    return p && !p->empty() ? p->data() : nullptr;
}

void
SparseMemory::clear()
{
    pages_.clear();
}

} // namespace mbias::sim
