#include "sim/plan.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mbias::sim
{

using isa::Opcode;

namespace
{

/** Simple = no memory access, no control flow. */
bool
isSimple(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Divu:
      case Opcode::Remu:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Sra:
      case Opcode::Slt:
      case Opcode::Sltu:
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Slli:
      case Opcode::Srli:
      case Opcode::Srai:
      case Opcode::Slti:
      case Opcode::Li:
      case Opcode::Nop:
        return true;
      default:
        return false;
    }
}

bool
isControlFlow(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret:
      case Opcode::Halt:
        return true;
      default:
        return false;
    }
}

bool
hasTarget(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
      case Opcode::Jmp:
      case Opcode::Call:
        return true;
      default:
        return false;
    }
}

/** Relaxed add through an attachMetrics handle (nullptr = detached). */
void
bump(const std::atomic<obs::Counter *> &c, std::uint64_t by = 1)
{
    if (obs::Counter *counter = c.load(std::memory_order_relaxed))
        counter->add(by);
}

} // namespace

std::uint64_t
ExecutionPlan::approxBytes() const
{
    return sizeof(ExecutionPlan) + ops.size() * sizeof(DecodedOp) +
           blockStarts.size() * sizeof(std::uint32_t) +
           idxByOffset.size() * sizeof(std::uint32_t);
}

std::shared_ptr<const ExecutionPlan>
ExecutionPlan::build(std::shared_ptr<const toolchain::LinkedProgram> program)
{
    mbias_assert(program, "cannot build a plan for a null program");
    const toolchain::LinkedProgram &prog = *program;
    const std::size_t n = prog.code.size();

    auto plan = std::make_shared<ExecutionPlan>();
    plan->codeBase = prog.codeBase;

    plan->ops.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const toolchain::PlacedInst &pi = prog.code[i];
        // The fast interpreter jumps through a handler table indexed
        // by the opcode with no default case, so reject out-of-range
        // ops here rather than there.
        mbias_assert(std::size_t(pi.inst.op) <
                         std::size_t(Opcode::NumOpcodes),
                     "bad opcode in linked program");
        DecodedOp &d = plan->ops[i];
        d.pc = pi.pc;
        d.imm = pi.inst.imm;
        d.targetIdx = pi.targetIdx;
        d.op = pi.inst.op;
        d.rd = pi.inst.rd;
        d.rs1 = pi.inst.rs1;
        d.rs2 = pi.inst.rs2;
        d.size = pi.size;
        d.accessSize = std::uint8_t(isa::memAccessSize(pi.inst.op));
    }

    // Simple-run lengths, in one backward pass: a run ends at the
    // first memory or control-flow instruction.
    std::uint32_t run = 0;
    for (std::size_t i = n; i-- > 0;) {
        DecodedOp &d = plan->ops[i];
        run = isSimple(d.op) ? std::min<std::uint32_t>(run + 1, 0xffff) : 0;
        d.runLen = std::uint16_t(run);
    }

    // Basic-block leaders: entries, control-flow targets, fall-throughs.
    std::vector<std::uint32_t> leaders;
    leaders.reserve(prog.functions.size() * 4 + 1);
    leaders.push_back(0);
    for (const auto &fn : prog.functions)
        leaders.push_back(fn.entryIdx);
    for (std::size_t i = 0; i < n; ++i) {
        const DecodedOp &d = plan->ops[i];
        if (hasTarget(d.op))
            leaders.push_back(d.targetIdx);
        if (isControlFlow(d.op) && i + 1 < n)
            leaders.push_back(std::uint32_t(i + 1));
    }
    std::sort(leaders.begin(), leaders.end());
    leaders.erase(std::unique(leaders.begin(), leaders.end()),
                  leaders.end());
    plan->blockStarts = std::move(leaders);

    // Return-address table over the code segment's byte range.
    mbias_assert(prog.codeEnd >= prog.codeBase, "bad code extent");
    plan->idxByOffset.assign(std::size_t(prog.codeEnd - prog.codeBase),
                             kNoIndex);
    for (std::size_t i = 0; i < n; ++i) {
        const Addr off = plan->ops[i].pc - prog.codeBase;
        mbias_assert(off < plan->idxByOffset.size(),
                     "instruction placed outside the code segment");
        plan->idxByOffset[std::size_t(off)] = std::uint32_t(i);
    }

    plan->program = std::move(program);
    return plan;
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity)
{
    mbias_assert(capacity > 0, "plan cache capacity must be nonzero");
}

PlanCache &
PlanCache::global()
{
    static PlanCache cache;
    return cache;
}

std::shared_ptr<const ExecutionPlan>
PlanCache::get(const std::shared_ptr<const toolchain::LinkedProgram> &program)
{
    mbias_assert(program, "plan lookup for a null program");
    const void *key = program.get();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++hits_;
            bump(cHits_);
            return it->second->second;
        }
    }

    // Build outside the lock; first insert wins on a racing miss.
    auto plan = ExecutionPlan::build(program);

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++misses_; // we did build one
        bump(cMisses_);
        return it->second->second;
    }
    lru_.emplace_front(key, std::move(plan));
    map_.emplace(key, lru_.begin());
    ++misses_;
    bump(cMisses_);
    while (map_.size() > capacity_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
        bump(cEvictions_);
    }
    return lru_.front().second;
}

PlanCache::Stats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return Stats{hits_, misses_, evictions_};
}

void
PlanCache::attachMetrics(obs::Registry *metrics)
{
    std::lock_guard<std::mutex> lock(metricsMutex_);
    if (!metrics) {
        cHits_ = nullptr;
        cMisses_ = nullptr;
        cEvictions_ = nullptr;
        return;
    }
    cHits_ = &metrics->counter("sim.plan.hits");
    cMisses_ = &metrics->counter("sim.plan.misses");
    cEvictions_ = &metrics->counter("sim.plan.evictions");
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    lru_.clear();
}

} // namespace mbias::sim
