#ifndef MBIAS_SIM_REGISTRY_HH
#define MBIAS_SIM_REGISTRY_HH

#include <string>
#include <vector>

#include "sim/config.hh"

namespace mbias::sim
{

/**
 * Which interpreter tiers a backend's core model supports beyond the
 * reference interpreter.  Follows the replay tier's precondition-
 * fallback pattern (sim/replay.hh): a caller that asks for an
 * unsupported tier silently gets the next tier down — run() checks
 * these declarations, so unsupported tiers are a documented fallback,
 * never an error.
 */
struct TierSupport
{
    bool fast = true;   ///< ExecutionPlan direct-threaded path
    bool trace = true;  ///< superblock op_batch tier on top of fast
    bool replay = true; ///< record-once/replay-many functional stream
};

/**
 * One registered machine backend: a configuration plus the tier
 * capabilities its core model declares.
 */
struct MachineBackend
{
    MachineConfig config;
    TierSupport tiers;
    /**
     * True for the three machines the paper actually measured (Core 2,
     * Pentium 4, m5 O3CPU).  MachineConfig::allPresets() — and every
     * figure pinned to the paper's platform set — iterates only these;
     * non-paper backends extend the study without disturbing goldens.
     */
    bool paperPreset = false;
    /** Human-readable core-model label ("out-of-order", "in-order"). */
    std::string coreModel;
};

/**
 * The ordered registry of machine backends.  Presets used to live in
 * MachineConfig::allPresets(); they now register here, and allPresets()
 * forwards to the paper subset.  Order is load-bearing: the paper
 * presets come first, in paper order, so existing consumers see the
 * same iteration they always did.
 */
class MachineRegistry
{
  public:
    static const MachineRegistry &global();

    const std::vector<MachineBackend> &backends() const
    {
        return backends_;
    }

    /** Paper-platform configs, in paper order (allPresets() source). */
    const std::vector<MachineConfig> &paperPresets() const
    {
        return paperPresets_;
    }

    /** All registered preset names, in registry order. */
    const std::vector<std::string> &names() const { return names_; }

    /** Registry names joined with ", " (CLI help/error text). */
    const std::string &namesJoined() const { return namesJoined_; }

    /** nullptr when no backend has that name. */
    const MachineBackend *byName(const std::string &name) const;

    /**
     * Tier capabilities for a configuration: the declaration of the
     * backend registered under config.name, or — for ad-hoc configs
     * that never registered — the declaration derived from the core
     * kind, so tweaked copies of a preset behave like the preset.
     */
    static TierSupport tiersFor(const MachineConfig &config);

  private:
    MachineRegistry();

    void add(MachineBackend backend);

    std::vector<MachineBackend> backends_;
    std::vector<MachineConfig> paperPresets_;
    std::vector<std::string> names_;
    std::string namesJoined_;
};

} // namespace mbias::sim

#endif // MBIAS_SIM_REGISTRY_HH
