#include "sim/machine.hh"

#include "base/bitutils.hh"
#include "base/random.hh"

#include <algorithm>
#include "base/logging.hh"

namespace mbias::sim
{

using isa::Opcode;
using isa::OpClass;
using toolchain::PlacedInst;

namespace
{

std::unique_ptr<uarch::BranchPredictor>
makePredictor(const MachineConfig &c)
{
    switch (c.predictor) {
      case PredictorKind::Bimodal:
        return std::make_unique<uarch::BimodalPredictor>(
            c.predictorTableBits);
      case PredictorKind::Gshare:
        return std::make_unique<uarch::GsharePredictor>(
            c.predictorTableBits, c.predictorHistoryBits);
    }
    mbias_panic("bad predictor kind");
}

} // namespace

/** Per-run pipeline/timing state. */
struct Machine::Pipeline
{
    Cycles now = 0;
    std::array<Cycles, isa::reg::numRegs> regReady{};

    std::uint64_t icount = 0;

    // Fetch-group state.
    unsigned groupSlots = 0;
    Addr groupBlockEnd = 0;
    bool forceNewGroup = true;

    // Code line/page last touched (sequential-fetch reuse).
    Addr lastCodeLine = ~Addr(0);
    Addr lastCodePage = ~Addr(0);
};

Machine::Machine(const MachineConfig &config)
    : config_(config),
      icache_(config.icache),
      dcache_(config.dcache),
      l2_(config.l2),
      itlb_(config.itlb),
      dtlb_(config.dtlb),
      predictor_(makePredictor(config)),
      btb_(config.btbSets, config.btbWays),
      storeBuffer_(config.storeBufferEntries, config.aliasWindowBits)
{
}

void
Machine::fetchAccounting(Pipeline &pipe, Addr pc, unsigned size,
                         PerfCounters &ctrs)
{
    const bool model_blocks = config_.enableFetchBlockModel;
    const bool new_group = pipe.forceNewGroup || pipe.groupSlots == 0 ||
                           (model_blocks && pc >= pipe.groupBlockEnd);
    if (new_group) {
        pipe.now += 1;
        ctrs.inc(Counter::FetchGroups);
        pipe.groupSlots = config_.fetchWidth;
        pipe.groupBlockEnd =
            model_blocks
                ? alignDown(pc, config_.fetchBlockBytes) +
                      config_.fetchBlockBytes
                : ~Addr(0);
        pipe.forceNewGroup = false;
    }
    pipe.groupSlots -= 1;
    if (model_blocks && pc + size > pipe.groupBlockEnd) {
        // Variable-length instruction spilling into the next block
        // consumes the rest of this group.
        pipe.groupSlots = 0;
    }

    // Instruction-side cache and TLB, at line/page crossing granularity
    // (sequential fetch reuses the current line without a new access).
    if (config_.enableCaches) {
        const Addr first = alignDown(pc, config_.icache.lineBytes);
        const Addr last =
            alignDown(pc + size - 1, config_.icache.lineBytes);
        for (Addr line = first; line <= last;
             line += config_.icache.lineBytes) {
            if (line == pipe.lastCodeLine)
                continue;
            pipe.lastCodeLine = line;
            if (!icache_.accessLine(line)) {
                ctrs.inc(Counter::IcacheMisses);
                pipe.now += config_.icache.missPenalty;
                if (!l2_.accessLine(line)) {
                    ctrs.inc(Counter::L2Misses);
                    pipe.now += config_.l2.missPenalty;
                }
            }
        }
    }
    if (config_.enableTlbs) {
        const Addr page = pc / config_.itlb.pageBytes;
        if (page != pipe.lastCodePage) {
            pipe.lastCodePage = page;
            const unsigned misses = itlb_.access(pc, size);
            if (misses) {
                ctrs.inc(Counter::ItlbMisses, misses);
                pipe.now += misses * config_.itlb.missPenalty;
            }
        }
    }
}

Cycles
Machine::memoryAccess(Pipeline &pipe, Addr addr, unsigned size,
                      bool is_store, PerfCounters &ctrs)
{
    Cycles lat = is_store ? 0 : config_.dcache.hitLatency;

    if (config_.enableTlbs) {
        const unsigned misses = dtlb_.access(addr, size);
        if (misses) {
            ctrs.inc(Counter::DtlbMisses, misses);
            lat += misses * config_.dtlb.missPenalty;
        }
    }

    const Addr first = alignDown(addr, config_.dcache.lineBytes);
    const Addr last = alignDown(addr + size - 1, config_.dcache.lineBytes);
    if (config_.enableCaches) {
        for (Addr line = first; line <= last;
             line += config_.dcache.lineBytes) {
            if (!dcache_.accessLine(line)) {
                ctrs.inc(Counter::DcacheMisses);
                lat += config_.dcache.missPenalty;
                if (!l2_.accessLine(line)) {
                    ctrs.inc(Counter::L2Misses);
                    lat += config_.l2.missPenalty;
                }
                if (config_.enableNextLinePrefetch) {
                    // Background fill of the next line; no demand
                    // latency, but it can pollute (and be perturbed
                    // by) set placement.
                    ctrs.inc(Counter::PrefetchesIssued);
                    dcache_.accessLine(line + config_.dcache.lineBytes);
                    l2_.accessLine(line + config_.dcache.lineBytes);
                }
            }
        }
    }
    if (last != first) {
        ctrs.inc(Counter::LineSplits);
        if (config_.enableLineSplitPenalty)
            lat += config_.lineSplitPenalty;
    }

    if (is_store) {
        // A line-crossing store occupies the store port for an extra
        // cycle; unlike load latency this cannot be hidden by the
        // out-of-order window (the port is a structural resource).
        if (last != first && config_.enableLineSplitPenalty)
            pipe.now += 1;
        storeBuffer_.recordStore(addr, size, pipe.icount);
        return 0; // the store buffer otherwise hides store latency
    }
    if (config_.enableStoreBufferAliasing &&
        storeBuffer_.loadAliases(addr, size, pipe.icount)) {
        ctrs.inc(Counter::AliasStalls);
        lat += config_.aliasPenalty;
    }
    return lat;
}

RunResult
Machine::run(const toolchain::ProcessImage &image, std::uint64_t max_insts,
             const NoiseModel &noise, Profile *profile)
{
    // Cold start: deterministic from the image alone.
    icache_.reset();
    dcache_.reset();
    l2_.reset();
    itlb_.reset();
    dtlb_.reset();
    predictor_->reset();
    btb_.reset();
    storeBuffer_.reset();

    const toolchain::LinkedProgram &prog = image.program;
    mbias_assert(!prog.code.empty(), "empty program");

    RunResult rr;
    PerfCounters &ctrs = rr.counters;

    SparseMemory mem;
    mem.writeBlock(prog.dataBase, prog.dataInit);

    std::array<std::uint64_t, isa::reg::numRegs> regs{};
    regs[isa::reg::sp] = image.initialSp;
    regs[isa::reg::gp] = image.gp;
    regs[isa::reg::hp] = image.heapBase;

    Pipeline pipe;

    auto set_reg = [&](isa::Reg rd, std::uint64_t v, Cycles ready) {
        if (rd != isa::reg::zero) {
            regs[rd] = v;
            pipe.regReady[rd] = ready;
        }
    };
    auto wait_for = [&](isa::Reg r) {
        const Cycles ready = pipe.regReady[r];
        if (ready > pipe.now) {
            const Cycles stall = ready - pipe.now;
            const Cycles hidden =
                std::min<Cycles>(stall, config_.oooWindowCycles);
            const Cycles exposed = stall - hidden;
            if (exposed) {
                pipe.now += exposed;
                ctrs.inc(Counter::StallCycles, exposed);
            }
        }
    };

    // Optional per-function attribution (index-range lookup; functions
    // are placed contiguously, so instruction index intervals identify
    // them).
    std::vector<std::uint32_t> fn_begin;
    std::size_t cur_fn = 0;
    std::uint32_t cur_begin = 1, cur_end = 0; // empty: force first lookup
    if (profile) {
        profile->functions.clear();
        for (const auto &lf : prog.functions) {
            FunctionProfile fp;
            fp.name = lf.name;
            fp.base = lf.base;
            fp.bytes = lf.bytes;
            profile->functions.push_back(std::move(fp));
            fn_begin.push_back(lf.entryIdx);
        }
    }
    Cycles prof_now = 0;
    std::uint64_t prof_ic = 0, prof_dc = 0, prof_mp = 0, prof_ls = 0,
                  prof_as = 0, prof_calls = 0;

    // OS-interrupt noise (seeded; disabled by default).
    Rng noise_rng(noise.seed ^ 0x05e1f00dULL);
    Cycles next_interrupt = ~Cycles(0);
    auto schedule_interrupt = [&](Cycles from) {
        const double jitter = 0.5 + noise_rng.nextDouble();
        next_interrupt =
            from + Cycles(double(noise.meanIntervalCycles) * jitter);
    };
    if (noise.enabled)
        schedule_interrupt(0);

    std::uint64_t icount = 0;
    std::uint32_t idx = image.entryIdx;
    bool halted = false;

    while (!halted && icount < max_insts) {
        if (noise.enabled && pipe.now >= next_interrupt) {
            ctrs.inc(Counter::OsInterrupts);
            pipe.now += noise.costCycles;
            for (unsigned e = 0; e < noise.linesEvictedPerInterrupt; ++e) {
                dcache_.invalidateSet(noise_rng.next());
                icache_.invalidateSet(noise_rng.next());
            }
            pipe.lastCodeLine = ~Addr(0); // force an icache re-access
            schedule_interrupt(pipe.now);
        }

        if (profile) {
            if (idx < cur_begin || idx >= cur_end) {
                const auto it = std::upper_bound(fn_begin.begin(),
                                                 fn_begin.end(), idx);
                cur_fn = std::size_t(it - fn_begin.begin()) - 1;
                cur_begin = fn_begin[cur_fn];
                cur_end = cur_fn + 1 < fn_begin.size()
                              ? fn_begin[cur_fn + 1]
                              : std::uint32_t(prog.code.size());
            }
            prof_now = pipe.now;
            prof_ic = ctrs.get(Counter::IcacheMisses);
            prof_dc = ctrs.get(Counter::DcacheMisses);
            prof_mp = ctrs.get(Counter::BranchMispredicts);
            prof_ls = ctrs.get(Counter::LineSplits);
            prof_as = ctrs.get(Counter::AliasStalls);
            prof_calls = ctrs.get(Counter::Calls);
        }

        const PlacedInst &pi = prog.code[idx];
        const isa::Instruction &in = pi.inst;
        ++icount;
        pipe.icount = icount;

        fetchAccounting(pipe, pi.pc, pi.size, ctrs);

        std::uint32_t next = idx + 1;

        switch (in.op) {
          // ---- register-register ALU ----
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::Divu:
          case Opcode::Remu:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Sll:
          case Opcode::Srl:
          case Opcode::Sra:
          case Opcode::Slt:
          case Opcode::Sltu: {
              wait_for(in.rs1);
              wait_for(in.rs2);
              const std::uint64_t a = regs[in.rs1];
              const std::uint64_t b = regs[in.rs2];
              std::uint64_t v = 0;
              Cycles lat = 1;
              switch (in.op) {
                case Opcode::Add: v = a + b; break;
                case Opcode::Sub: v = a - b; break;
                case Opcode::Mul:
                  v = a * b;
                  lat = config_.intMulLatency;
                  break;
                case Opcode::Divu:
                  v = b == 0 ? ~std::uint64_t(0) : a / b;
                  lat = config_.intDivLatency;
                  break;
                case Opcode::Remu:
                  v = b == 0 ? a : a % b;
                  lat = config_.intDivLatency;
                  break;
                case Opcode::And: v = a & b; break;
                case Opcode::Or: v = a | b; break;
                case Opcode::Xor: v = a ^ b; break;
                case Opcode::Sll: v = a << (b & 63); break;
                case Opcode::Srl: v = a >> (b & 63); break;
                case Opcode::Sra:
                  v = std::uint64_t(std::int64_t(a) >> (b & 63));
                  break;
                case Opcode::Slt:
                  v = std::int64_t(a) < std::int64_t(b) ? 1 : 0;
                  break;
                case Opcode::Sltu: v = a < b ? 1 : 0; break;
                default: mbias_panic("unreachable");
              }
              set_reg(in.rd, v, pipe.now + lat);
              break;
          }

          // ---- register-immediate ALU ----
          case Opcode::Addi:
          case Opcode::Andi:
          case Opcode::Ori:
          case Opcode::Xori:
          case Opcode::Slli:
          case Opcode::Srli:
          case Opcode::Srai:
          case Opcode::Slti: {
              wait_for(in.rs1);
              const std::uint64_t a = regs[in.rs1];
              const std::uint64_t m = std::uint64_t(in.imm);
              std::uint64_t v = 0;
              switch (in.op) {
                case Opcode::Addi: v = a + m; break;
                case Opcode::Andi: v = a & m; break;
                case Opcode::Ori: v = a | m; break;
                case Opcode::Xori: v = a ^ m; break;
                case Opcode::Slli: v = a << (m & 63); break;
                case Opcode::Srli: v = a >> (m & 63); break;
                case Opcode::Srai:
                  v = std::uint64_t(std::int64_t(a) >> (m & 63));
                  break;
                case Opcode::Slti:
                  v = std::int64_t(a) < in.imm ? 1 : 0;
                  break;
                default: mbias_panic("unreachable");
              }
              set_reg(in.rd, v, pipe.now + 1);
              break;
          }

          case Opcode::Li:
            set_reg(in.rd, std::uint64_t(in.imm), pipe.now + 1);
            break;

          case Opcode::La:
            mbias_panic("unresolved La reached the simulator");

          // ---- loads ----
          case Opcode::Ld1:
          case Opcode::Ld2:
          case Opcode::Ld4:
          case Opcode::Ld8: {
              wait_for(in.rs1);
              const unsigned size = isa::memAccessSize(in.op);
              const Addr addr = regs[in.rs1] + std::uint64_t(in.imm);
              ctrs.inc(Counter::Loads);
              const Cycles lat =
                  memoryAccess(pipe, addr, size, false, ctrs);
              set_reg(in.rd, mem.read(addr, size), pipe.now + lat);
              break;
          }

          // ---- stores ----
          case Opcode::St1:
          case Opcode::St2:
          case Opcode::St4:
          case Opcode::St8: {
              wait_for(in.rs1);
              wait_for(in.rd); // data register
              const unsigned size = isa::memAccessSize(in.op);
              const Addr addr = regs[in.rs1] + std::uint64_t(in.imm);
              ctrs.inc(Counter::Stores);
              memoryAccess(pipe, addr, size, true, ctrs);
              mem.write(addr, size, regs[in.rd]);
              break;
          }

          // ---- conditional branches ----
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
          case Opcode::Bltu:
          case Opcode::Bgeu: {
              wait_for(in.rs1);
              wait_for(in.rs2);
              const std::uint64_t a = regs[in.rs1];
              const std::uint64_t b = regs[in.rs2];
              bool taken = false;
              switch (in.op) {
                case Opcode::Beq: taken = a == b; break;
                case Opcode::Bne: taken = a != b; break;
                case Opcode::Blt:
                  taken = std::int64_t(a) < std::int64_t(b);
                  break;
                case Opcode::Bge:
                  taken = std::int64_t(a) >= std::int64_t(b);
                  break;
                case Opcode::Bltu: taken = a < b; break;
                case Opcode::Bgeu: taken = a >= b; break;
                default: mbias_panic("unreachable");
              }
              ctrs.inc(Counter::BranchesExecuted);
              if (config_.enableBranchPrediction) {
                  const bool pred = predictor_->predict(pi.pc);
                  predictor_->update(pi.pc, taken);
                  if (pred != taken) {
                      ctrs.inc(Counter::BranchMispredicts);
                      pipe.now += config_.branchMispredictPenalty;
                      pipe.forceNewGroup = true;
                  }
              }
              if (taken) {
                  ctrs.inc(Counter::TakenBranches);
                  const Addr target = prog.code[pi.targetIdx].pc;
                  if (config_.enableBtb &&
                      !btb_.lookupAndUpdate(pi.pc, target)) {
                      ctrs.inc(Counter::BtbMisses);
                      pipe.now += config_.btbMissPenalty;
                  }
                  pipe.forceNewGroup = true;
                  next = pi.targetIdx;
              }
              break;
          }

          case Opcode::Jmp: {
              const Addr target = prog.code[pi.targetIdx].pc;
              if (config_.enableBtb &&
                  !btb_.lookupAndUpdate(pi.pc, target)) {
                  ctrs.inc(Counter::BtbMisses);
                  pipe.now += config_.btbMissPenalty;
              }
              pipe.forceNewGroup = true;
              next = pi.targetIdx;
              break;
          }

          case Opcode::Call: {
              wait_for(isa::reg::sp);
              ctrs.inc(Counter::Calls);
              const Addr new_sp = regs[isa::reg::sp] - 8;
              const Addr ret_addr = pi.pc + pi.size;
              ctrs.inc(Counter::Stores);
              memoryAccess(pipe, new_sp, 8, true, ctrs);
              mem.write(new_sp, 8, ret_addr);
              set_reg(isa::reg::sp, new_sp, pipe.now + 1);
              const Addr target = prog.code[pi.targetIdx].pc;
              if (config_.enableBtb &&
                  !btb_.lookupAndUpdate(pi.pc, target)) {
                  ctrs.inc(Counter::BtbMisses);
                  pipe.now += config_.btbMissPenalty;
              }
              pipe.forceNewGroup = true;
              next = pi.targetIdx;
              break;
          }

          case Opcode::Ret: {
              wait_for(isa::reg::sp);
              const Addr sp = regs[isa::reg::sp];
              ctrs.inc(Counter::Loads);
              // Return-address stack: the target is predicted
              // perfectly, so the load latency is off the critical
              // path, but the access still exercises the cache/TLB.
              memoryAccess(pipe, sp, 8, false, ctrs);
              const Addr ret_addr = mem.read(sp, 8);
              set_reg(isa::reg::sp, sp + 8, pipe.now + 1);
              auto it = prog.addrToIdx.find(ret_addr);
              mbias_assert(it != prog.addrToIdx.end(),
                           "corrupted return address 0x", std::hex,
                           ret_addr);
              pipe.forceNewGroup = true;
              next = it->second;
              break;
          }

          case Opcode::Nop:
            ctrs.inc(Counter::NopsExecuted);
            break;

          case Opcode::Halt:
            halted = true;
            break;

          default:
            mbias_panic("bad opcode");
        }

        if (profile) {
            FunctionProfile &fp = profile->functions[cur_fn];
            fp.instructions += 1;
            fp.cycles += pipe.now - prof_now;
            fp.icacheMisses +=
                ctrs.get(Counter::IcacheMisses) - prof_ic;
            fp.dcacheMisses +=
                ctrs.get(Counter::DcacheMisses) - prof_dc;
            fp.branchMispredicts +=
                ctrs.get(Counter::BranchMispredicts) - prof_mp;
            fp.lineSplits += ctrs.get(Counter::LineSplits) - prof_ls;
            fp.aliasStalls += ctrs.get(Counter::AliasStalls) - prof_as;
            fp.calls += ctrs.get(Counter::Calls) - prof_calls;
        }

        idx = next;
    }

    ctrs.set(Counter::Cycles, pipe.now);
    ctrs.set(Counter::Instructions, icount);
    rr.halted = halted;
    rr.result = regs[isa::reg::a0];
    return rr;
}

} // namespace mbias::sim
