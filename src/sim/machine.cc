#include "sim/machine.hh"

#include "base/bitutils.hh"
#include "base/random.hh"
#include "sim/attribution.hh"
#include "obs/trace.hh"
#include "sim/plan.hh"
#include "sim/replay.hh"
#include "sim/trace.hh"

#include <algorithm>
#include <cstdlib>
#include "base/logging.hh"

// Attribution recording: side-effect-free observation of where an
// event landed (which set/entry).  Compiles to nothing under
// -DMBIAS_OBS=OFF; at runtime it is dead unless run() was handed an
// Attribution sink.  Never touch PerfCounters or component state here.
#if MBIAS_OBS_ENABLED
#define MBIAS_ATTR(expr)                                                    \
    do {                                                                    \
        if (attr_)                                                          \
            attr_->expr;                                                    \
    } while (0)
#else
#define MBIAS_ATTR(expr) ((void)0)
#endif

namespace mbias::sim
{

using isa::Opcode;
using isa::OpClass;
using toolchain::PlacedInst;

bool
referenceForcedByEnv()
{
    const char *e = std::getenv("MBIAS_SIM_REFERENCE");
    return e && *e && !(e[0] == '0' && e[1] == '\0');
}

namespace
{

/** MBIAS_SIM_REFERENCE=1 pins every run to the reference interpreter
 *  (re-read per run, so one process can compare both paths). */
bool
referenceForced()
{
    return referenceForcedByEnv();
}

/** MBIAS_SIM_TRACE=0 drops fast-path-eligible runs back to runFast
 *  (re-read per run, so one process can compare all three tiers). */
bool
traceDisabledByEnv()
{
    const char *e = std::getenv("MBIAS_SIM_TRACE");
    return e && e[0] == '0' && e[1] == '\0';
}

/**
 * CoreModel policies for runPlanImpl's `if constexpr` points.  The
 * out-of-order policy is the historical behavior — every branch it
 * guards compiles to the exact code the pre-backend-layer loop had, so
 * existing presets stay bitwise identical at unchanged throughput.
 */
struct OooCore
{
    static constexpr bool kInOrder = false;
};

/** Strict in-order issue: no latency hiding, multi-cycle ALU ops block
 *  the pipe, taken transfers into the middle of a fetch block refetch
 *  (config.fetchRealignPenalty). */
struct InOrderCore
{
    static constexpr bool kInOrder = true;
};

std::unique_ptr<uarch::BranchPredictor>
makePredictor(const MachineConfig &c)
{
    switch (c.predictor) {
      case PredictorKind::Bimodal:
        return std::make_unique<uarch::BimodalPredictor>(
            c.predictorTableBits);
      case PredictorKind::Gshare:
        return std::make_unique<uarch::GsharePredictor>(
            c.predictorTableBits, c.predictorHistoryBits);
    }
    mbias_panic("bad predictor kind");
}

/**
 * Fast-path twin of uarch::Cache's line touch with a packed slot
 * array: same geometry, same MRU-ordered hit/replacement decisions,
 * but one uint64 per way — (tag << 1) | valid — instead of parallel
 * vector<uint64> / vector<bool>, so the way scan and the MRU shift
 * are plain word moves.  Starting from the same (reset) state, every
 * access returns exactly what Cache::accessLine would, so the
 * counters derived from it are bitwise identical; only the reference
 * interpreter's own Cache instances accumulate internal hit/miss
 * statistics, which nothing outside the machine observes.
 */
struct ShadowCache
{
    unsigned shift;
    unsigned ways;
    std::uint64_t setMask;
    /** slots[set * ways + way] = (tag << 1) | 1, MRU-first; 0 empty. */
    std::vector<std::uint64_t> slots;

    explicit ShadowCache(const uarch::CacheConfig &c)
        : shift(floorLog2(c.lineBytes)), ways(c.ways), setMask(c.sets - 1),
          slots(std::size_t(c.sets) * c.ways, 0)
    {
    }

    bool access(Addr addr)
    {
        const std::uint64_t tag = addr >> shift;
        const std::uint64_t key = (tag << 1) | 1;
        std::uint64_t *base = slots.data() + std::size_t(tag & setMask) * ways;
        for (unsigned w = 0; w < ways; ++w) {
            if (base[w] == key) {
                for (unsigned k = w; k > 0; --k)
                    base[k] = base[k - 1];
                base[0] = key;
                return true;
            }
        }
        for (unsigned k = ways - 1; k > 0; --k)
            base[k] = base[k - 1];
        base[0] = key;
        return false;
    }

    /** Read-only residency probe: would access(@p addr) hit right
     *  now?  No LRU update, so probing leaves the model state
     *  untouched (the trace tier's noise guard uses this to bound a
     *  block's penalty without committing to running it). */
    bool contains(Addr addr) const
    {
        const std::uint64_t tag = addr >> shift;
        const std::uint64_t key = (tag << 1) | 1;
        const std::uint64_t *base =
            slots.data() + std::size_t(tag & setMask) * ways;
        for (unsigned w = 0; w < ways; ++w) {
            if (base[w] == key)
                return true;
        }
        return false;
    }

    /** Twin of uarch::Cache::invalidateSet: clearing valid bits there
     *  is observationally identical to zeroing the packed slots here —
     *  a stale tag can never hit again, and invalid ways shift through
     *  the MRU order exactly like empty ones. */
    void invalidateSet(std::uint64_t set)
    {
        std::uint64_t *base = slots.data() + std::size_t(set & setMask) * ways;
        for (unsigned w = 0; w < ways; ++w)
            base[w] = 0;
    }
};

/** Fast-path twin of uarch::Tlb (fully associative, LRU): one packed
 *  (vpn << 1) | valid word per entry, same MRU-ordered decisions. */
struct ShadowTlb
{
    unsigned entries;
    std::vector<std::uint64_t> slots; ///< MRU-first; 0 empty

    explicit ShadowTlb(const uarch::TlbConfig &c)
        : entries(c.entries), slots(c.entries, 0)
    {
    }

    bool touch(std::uint64_t vpn)
    {
        const std::uint64_t key = (vpn << 1) | 1;
        std::uint64_t *s = slots.data();
        for (unsigned e = 0; e < entries; ++e) {
            if (s[e] == key) {
                for (unsigned k = e; k > 0; --k)
                    s[k] = s[k - 1];
                s[0] = key;
                return true;
            }
        }
        for (unsigned k = entries - 1; k > 0; --k)
            s[k] = s[k - 1];
        s[0] = key;
        return false;
    }

    unsigned accessVpns(std::uint64_t first_vpn, std::uint64_t last_vpn)
    {
        unsigned miss_count = 0;
        if (!touch(first_vpn))
            ++miss_count;
        if (last_vpn != first_vpn && !touch(last_vpn))
            ++miss_count;
        return miss_count;
    }

    /** Read-only residency probe (no LRU update), the ShadowCache
     *  contains() counterpart. */
    bool contains(std::uint64_t vpn) const
    {
        const std::uint64_t key = (vpn << 1) | 1;
        for (unsigned e = 0; e < entries; ++e) {
            if (slots[e] == key)
                return true;
        }
        return false;
    }

    bool containsVpns(std::uint64_t first_vpn,
                      std::uint64_t last_vpn) const
    {
        return contains(first_vpn) &&
               (last_vpn == first_vpn || contains(last_vpn));
    }
};

} // namespace

bool
traceTierUsable(const Machine &machine)
{
#if !MBIAS_SIM_TRACE_ENABLED
    (void)machine;
    return false;
#else
    return machine.useFastPath() && machine.useTracePath() &&
           machine.tierSupport().trace && !traceDisabledByEnv() &&
           !referenceForced();
#endif
}

std::string
activeSimTierDescription()
{
    // Replay provenance rides along as a suffix: it serves repetition
    // families on top of whichever tier single runs take.
    std::string replay;
#if !MBIAS_SIM_REPLAY_ENABLED
    replay = " (replay: -DMBIAS_SIM_REPLAY=OFF)";
#else
    if (replayDisabledByEnv())
        replay = " (replay: MBIAS_SIM_REPLAY=0)";
    else
        replay = " + replay";
#endif
#if !MBIAS_SIM_FASTPATH_ENABLED
    return "reference (-DMBIAS_SIM_FASTPATH=OFF)";
#else
    if (referenceForced())
        return "reference (MBIAS_SIM_REFERENCE set)";
#if !MBIAS_SIM_TRACE_ENABLED
    return "fast (-DMBIAS_SIM_TRACE=OFF)" + replay;
#else
    if (traceDisabledByEnv())
        return "fast (MBIAS_SIM_TRACE=0)" + replay;
    return "trace" + replay;
#endif
#endif
}

/** Per-run pipeline/timing state. */
struct Machine::Pipeline
{
    Cycles now = 0;
    std::array<Cycles, isa::reg::numRegs> regReady{};

    std::uint64_t icount = 0;

    // Fetch-group state.
    unsigned groupSlots = 0;
    Addr groupBlockEnd = 0;
    bool forceNewGroup = true;

    // Code line/page last touched (sequential-fetch reuse).
    Addr lastCodeLine = ~Addr(0);
    Addr lastCodePage = ~Addr(0);
};

Machine::Machine(const MachineConfig &config)
    : config_(config),
      tiers_(MachineRegistry::tiersFor(config)),
      icache_(config.icache),
      dcache_(config.dcache),
      l2_(config.l2),
      itlb_(config.itlb),
      dtlb_(config.dtlb),
      predictor_(makePredictor(config)),
      btb_(config.btbSets, config.btbWays),
      storeBuffer_(config.storeBufferEntries, config.aliasWindowBits)
{
}

void
Machine::fetchAccounting(Pipeline &pipe, Addr pc, unsigned size,
                         PerfCounters &ctrs)
{
    const bool model_blocks = config_.enableFetchBlockModel;
    const bool new_group = pipe.forceNewGroup || pipe.groupSlots == 0 ||
                           (model_blocks && pc >= pipe.groupBlockEnd);
    if (new_group) {
        pipe.now += 1;
        ctrs.inc(Counter::FetchGroups);
        pipe.groupSlots = config_.fetchWidth;
        pipe.groupBlockEnd =
            model_blocks
                ? alignDown(pc, config_.fetchBlockBytes) +
                      config_.fetchBlockBytes
                : ~Addr(0);
        pipe.forceNewGroup = false;
    }
    pipe.groupSlots -= 1;
    if (model_blocks && pc + size > pipe.groupBlockEnd) {
        // Variable-length instruction spilling into the next block
        // consumes the rest of this group.
        pipe.groupSlots = 0;
    }

    // Instruction-side cache and TLB, at line/page crossing granularity
    // (sequential fetch reuses the current line without a new access).
    if (config_.enableCaches) {
        const Addr first = alignDown(pc, config_.icache.lineBytes);
        const Addr last =
            alignDown(pc + size - 1, config_.icache.lineBytes);
        for (Addr line = first; line <= last;
             line += config_.icache.lineBytes) {
            if (line == pipe.lastCodeLine)
                continue;
            pipe.lastCodeLine = line;
            MBIAS_ATTR(icache.touch(icache_.setIndex(line)));
            if (!icache_.accessLine(line)) {
                ctrs.inc(Counter::IcacheMisses);
                MBIAS_ATTR(icache.miss(icache_.setIndex(line)));
                pipe.now += config_.icache.missPenalty;
                if (!l2_.accessLine(line)) {
                    ctrs.inc(Counter::L2Misses);
                    pipe.now += config_.l2.missPenalty;
                }
            }
        }
    }
    if (config_.enableTlbs) {
        const Addr page = pc / config_.itlb.pageBytes;
        if (page != pipe.lastCodePage) {
            pipe.lastCodePage = page;
            const unsigned misses = itlb_.access(pc, size);
#if MBIAS_OBS_ENABLED
            if (attr_) {
                const std::size_t b =
                    std::size_t(page) & (attr_->itlb.sets - 1);
                attr_->itlb.touch(b);
                for (unsigned m = 0; m < misses; ++m)
                    attr_->itlb.miss(b);
            }
#endif
            if (misses) {
                ctrs.inc(Counter::ItlbMisses, misses);
                pipe.now += misses * config_.itlb.missPenalty;
            }
        }
    }
}

Cycles
Machine::memoryAccess(Pipeline &pipe, Addr addr, unsigned size,
                      bool is_store, PerfCounters &ctrs)
{
    Cycles lat = is_store ? 0 : config_.dcache.hitLatency;

    if (config_.enableTlbs) {
        const unsigned misses = dtlb_.access(addr, size);
#if MBIAS_OBS_ENABLED
        if (attr_) {
            const std::size_t b =
                std::size_t(addr / config_.dtlb.pageBytes) &
                (attr_->dtlb.sets - 1);
            attr_->dtlb.touch(b);
            for (unsigned m = 0; m < misses; ++m)
                attr_->dtlb.miss(b);
        }
#endif
        if (misses) {
            ctrs.inc(Counter::DtlbMisses, misses);
            lat += misses * config_.dtlb.missPenalty;
        }
    }

    const Addr first = alignDown(addr, config_.dcache.lineBytes);
    const Addr last = alignDown(addr + size - 1, config_.dcache.lineBytes);
    if (config_.enableCaches) {
        for (Addr line = first; line <= last;
             line += config_.dcache.lineBytes) {
            MBIAS_ATTR(dcache.touch(dcache_.setIndex(line)));
            if (!dcache_.accessLine(line)) {
                ctrs.inc(Counter::DcacheMisses);
                MBIAS_ATTR(dcache.miss(dcache_.setIndex(line)));
                lat += config_.dcache.missPenalty;
                if (!l2_.accessLine(line)) {
                    ctrs.inc(Counter::L2Misses);
                    lat += config_.l2.missPenalty;
                }
                if (config_.enableNextLinePrefetch) {
                    // Background fill of the next line; no demand
                    // latency, but it can pollute (and be perturbed
                    // by) set placement.
                    ctrs.inc(Counter::PrefetchesIssued);
                    const Addr next_line =
                        line + config_.dcache.lineBytes;
                    MBIAS_ATTR(
                        dcache.touch(dcache_.setIndex(next_line)));
                    const bool prefetch_hit =
                        dcache_.accessLine(next_line);
                    if (!prefetch_hit)
                        MBIAS_ATTR(
                            dcache.miss(dcache_.setIndex(next_line)));
                    l2_.accessLine(next_line);
                }
            }
        }
    }
    if (last != first) {
        ctrs.inc(Counter::LineSplits);
        if (config_.enableLineSplitPenalty)
            lat += config_.lineSplitPenalty;
    }

    if (is_store) {
        // A line-crossing store occupies the store port for an extra
        // cycle; unlike load latency this cannot be hidden by the
        // out-of-order window (the port is a structural resource).
        if (last != first && config_.enableLineSplitPenalty)
            pipe.now += 1;
        storeBuffer_.recordStore(addr, size, pipe.icount);
        return 0; // the store buffer otherwise hides store latency
    }
    if (config_.enableStoreBufferAliasing &&
        storeBuffer_.loadAliases(addr, size, pipe.icount)) {
        ctrs.inc(Counter::AliasStalls);
        lat += config_.aliasPenalty;
    }
    return lat;
}

RunResult
Machine::run(const toolchain::ProcessImage &image, std::uint64_t max_insts,
             const NoiseModel &noise, Profile *profile,
             Attribution *attribution)
{
#if MBIAS_SIM_FASTPATH_ENABLED
    // The fast tiers handle the common campaign case: deterministic,
    // unprofiled runs.  Noise injection, per-function profiling, and
    // per-set attribution read per-instruction state the fast lanes
    // skip, so those runs stay on the reference interpreter.
    if (useFastPath_ && tiers_.fast && !noise.active() && !profile &&
        !attribution && !referenceForced()) {
        const auto plan = PlanCache::global().get(image.program);
#if MBIAS_SIM_TRACE_ENABLED
        if (traceTierUsable(*this))
            return runTrace(image, max_insts, plan);
#endif
        return runFast(image, max_insts, *plan);
    }
#endif

    // Noise invalidations bypass the attribution occupancy mirror;
    // the combination has no use case, so reject it outright.
    mbias_assert(!(attribution && noise.enabled),
                 "attribution requires a noise-free run");
    if (attribution)
        attribution->configure(config_);
    attr_ = MBIAS_OBS_ENABLED ? attribution : nullptr;

    // Cold start: deterministic from the image alone.
    icache_.reset();
    dcache_.reset();
    l2_.reset();
    itlb_.reset();
    dtlb_.reset();
    predictor_->reset();
    btb_.reset();
    storeBuffer_.reset();

    const toolchain::LinkedProgram &prog = image.prog();
    mbias_assert(!prog.code.empty(), "empty program");

    RunResult rr;
    PerfCounters &ctrs = rr.counters;

    SparseMemory mem;
    mem.writeBlock(prog.dataBase, prog.dataInit);

    std::array<std::uint64_t, isa::reg::numRegs> regs{};
    regs[isa::reg::sp] = image.initialSp;
    regs[isa::reg::gp] = image.gp;
    regs[isa::reg::hp] = image.heapBase;

    Pipeline pipe;

    auto set_reg = [&](isa::Reg rd, std::uint64_t v, Cycles ready) {
        if (rd != isa::reg::zero) {
            regs[rd] = v;
            pipe.regReady[rd] = ready;
        }
    };
    // CoreModel policy, runtime-selected here (the reference path is
    // not throughput-critical); runPlanImpl selects the same policy at
    // compile time per backend.
    const bool in_order = config_.core == CoreKind::InOrder;

    auto wait_for = [&](isa::Reg r) {
        const Cycles ready = pipe.regReady[r];
        if (ready > pipe.now) {
            const Cycles stall = ready - pipe.now;
            // In-order cores expose the whole stall; the OoO window
            // hides up to oooWindowCycles of it.
            const Cycles hidden =
                in_order ? 0
                         : std::min<Cycles>(stall, config_.oooWindowCycles);
            const Cycles exposed = stall - hidden;
            if (exposed) {
                pipe.now += exposed;
                ctrs.inc(Counter::StallCycles, exposed);
            }
        }
    };
    // In-order front ends refetch when a taken transfer lands inside a
    // fetch block rather than at its start.
    auto redirect_realign = [&](Addr target) {
        if (in_order && config_.enableFetchBlockModel &&
            (target & (Addr(config_.fetchBlockBytes) - 1)) != 0)
            pipe.now += config_.fetchRealignPenalty;
    };

    // Optional per-function attribution (index-range lookup; functions
    // are placed contiguously, so instruction index intervals identify
    // them).
    std::vector<std::uint32_t> fn_begin;
    std::size_t cur_fn = 0;
    std::uint32_t cur_begin = 1, cur_end = 0; // empty: force first lookup
    if (profile) {
        profile->functions.clear();
        for (const auto &lf : prog.functions) {
            FunctionProfile fp;
            fp.name = lf.name;
            fp.base = lf.base;
            fp.bytes = lf.bytes;
            profile->functions.push_back(std::move(fp));
            fn_begin.push_back(lf.entryIdx);
        }
    }
    Cycles prof_now = 0;
    std::uint64_t prof_ic = 0, prof_dc = 0, prof_mp = 0, prof_ls = 0,
                  prof_as = 0, prof_calls = 0, prof_l2 = 0, prof_it = 0,
                  prof_dt = 0, prof_bt = 0, prof_st = 0, prof_fg = 0;

    // OS-interrupt noise (seeded; disabled by default).
    Rng noise_rng(noise.seed ^ 0x05e1f00dULL);
    Cycles next_interrupt = ~Cycles(0);
    auto schedule_interrupt = [&](Cycles from) {
        const double jitter = 0.5 + noise_rng.nextDouble();
        next_interrupt =
            from + Cycles(double(noise.meanIntervalCycles) * jitter);
    };
    if (noise.enabled)
        schedule_interrupt(0);

    // DVFS frequency steps (seeded; independent stream so the factor
    // can be swept alone).  A step charges the transition plus the
    // work lost over the slowed residency as one lump — timing only,
    // no architectural or cache state is touched — and the next step
    // cannot begin before this residency ends.
    Rng dvfs_rng(noise.seed ^ 0xd7f5c10cULL);
    Cycles next_dvfs = ~Cycles(0);
    auto schedule_dvfs = [&](Cycles from) {
        const double jitter = 0.5 + dvfs_rng.nextDouble();
        next_dvfs =
            from + Cycles(double(noise.dvfsMeanIntervalCycles) * jitter);
    };
    auto do_dvfs_step = [&]() {
        const double rj = 0.5 + dvfs_rng.nextDouble();
        const Cycles residency =
            Cycles(double(noise.dvfsMeanResidencyCycles) * rj);
        pipe.now += noise.dvfsTransitionCycles +
                    residency * noise.dvfsSlowdownPercent / 100;
        schedule_dvfs(pipe.now + residency);
    };
    if (noise.dvfsEnabled)
        schedule_dvfs(0);

    std::uint64_t icount = 0;
    std::uint32_t idx = image.entryIdx;
    bool halted = false;

    while (!halted && icount < max_insts) {
        if (noise.enabled && pipe.now >= next_interrupt) {
            ctrs.inc(Counter::OsInterrupts);
            pipe.now += noise.costCycles;
            for (unsigned e = 0; e < noise.linesEvictedPerInterrupt; ++e) {
                dcache_.invalidateSet(noise_rng.next());
                icache_.invalidateSet(noise_rng.next());
            }
            pipe.lastCodeLine = ~Addr(0); // force an icache re-access
            schedule_interrupt(pipe.now);
        }
        if (noise.dvfsEnabled && pipe.now >= next_dvfs)
            do_dvfs_step();

        if (profile) {
            if (idx < cur_begin || idx >= cur_end) {
                const auto it = std::upper_bound(fn_begin.begin(),
                                                 fn_begin.end(), idx);
                cur_fn = std::size_t(it - fn_begin.begin()) - 1;
                cur_begin = fn_begin[cur_fn];
                cur_end = cur_fn + 1 < fn_begin.size()
                              ? fn_begin[cur_fn + 1]
                              : std::uint32_t(prog.code.size());
            }
            prof_now = pipe.now;
            prof_ic = ctrs.get(Counter::IcacheMisses);
            prof_dc = ctrs.get(Counter::DcacheMisses);
            prof_mp = ctrs.get(Counter::BranchMispredicts);
            prof_ls = ctrs.get(Counter::LineSplits);
            prof_as = ctrs.get(Counter::AliasStalls);
            prof_calls = ctrs.get(Counter::Calls);
            prof_l2 = ctrs.get(Counter::L2Misses);
            prof_it = ctrs.get(Counter::ItlbMisses);
            prof_dt = ctrs.get(Counter::DtlbMisses);
            prof_bt = ctrs.get(Counter::BtbMisses);
            prof_st = ctrs.get(Counter::StallCycles);
            prof_fg = ctrs.get(Counter::FetchGroups);
        }

        const PlacedInst &pi = prog.code[idx];
        const isa::Instruction &in = pi.inst;
        ++icount;
        pipe.icount = icount;

        fetchAccounting(pipe, pi.pc, pi.size, ctrs);

        std::uint32_t next = idx + 1;

        switch (in.op) {
          // ---- register-register ALU ----
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::Divu:
          case Opcode::Remu:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Sll:
          case Opcode::Srl:
          case Opcode::Sra:
          case Opcode::Slt:
          case Opcode::Sltu: {
              wait_for(in.rs1);
              wait_for(in.rs2);
              const std::uint64_t a = regs[in.rs1];
              const std::uint64_t b = regs[in.rs2];
              std::uint64_t v = 0;
              Cycles lat = 1;
              switch (in.op) {
                case Opcode::Add: v = a + b; break;
                case Opcode::Sub: v = a - b; break;
                case Opcode::Mul:
                  v = a * b;
                  lat = config_.intMulLatency;
                  break;
                case Opcode::Divu:
                  v = b == 0 ? ~std::uint64_t(0) : a / b;
                  lat = config_.intDivLatency;
                  break;
                case Opcode::Remu:
                  v = b == 0 ? a : a % b;
                  lat = config_.intDivLatency;
                  break;
                case Opcode::And: v = a & b; break;
                case Opcode::Or: v = a | b; break;
                case Opcode::Xor: v = a ^ b; break;
                case Opcode::Sll: v = a << (b & 63); break;
                case Opcode::Srl: v = a >> (b & 63); break;
                case Opcode::Sra:
                  v = std::uint64_t(std::int64_t(a) >> (b & 63));
                  break;
                case Opcode::Slt:
                  v = std::int64_t(a) < std::int64_t(b) ? 1 : 0;
                  break;
                case Opcode::Sltu: v = a < b ? 1 : 0; break;
                default: mbias_panic("unreachable");
              }
              if (in_order && lat > 1) {
                  // In-order pipes block issue behind a multi-cycle
                  // ALU op: the busy cycles are exposed stalls, and
                  // the result is ready right after issue resumes.
                  pipe.now += lat - 1;
                  ctrs.inc(Counter::StallCycles, lat - 1);
                  lat = 1;
              }
              set_reg(in.rd, v, pipe.now + lat);
              break;
          }

          // ---- register-immediate ALU ----
          case Opcode::Addi:
          case Opcode::Andi:
          case Opcode::Ori:
          case Opcode::Xori:
          case Opcode::Slli:
          case Opcode::Srli:
          case Opcode::Srai:
          case Opcode::Slti: {
              wait_for(in.rs1);
              const std::uint64_t a = regs[in.rs1];
              const std::uint64_t m = std::uint64_t(in.imm);
              std::uint64_t v = 0;
              switch (in.op) {
                case Opcode::Addi: v = a + m; break;
                case Opcode::Andi: v = a & m; break;
                case Opcode::Ori: v = a | m; break;
                case Opcode::Xori: v = a ^ m; break;
                case Opcode::Slli: v = a << (m & 63); break;
                case Opcode::Srli: v = a >> (m & 63); break;
                case Opcode::Srai:
                  v = std::uint64_t(std::int64_t(a) >> (m & 63));
                  break;
                case Opcode::Slti:
                  v = std::int64_t(a) < in.imm ? 1 : 0;
                  break;
                default: mbias_panic("unreachable");
              }
              set_reg(in.rd, v, pipe.now + 1);
              break;
          }

          case Opcode::Li:
            set_reg(in.rd, std::uint64_t(in.imm), pipe.now + 1);
            break;

          case Opcode::La:
            mbias_panic("unresolved La reached the simulator");

          // ---- loads ----
          case Opcode::Ld1:
          case Opcode::Ld2:
          case Opcode::Ld4:
          case Opcode::Ld8: {
              wait_for(in.rs1);
              const unsigned size = isa::memAccessSize(in.op);
              const Addr addr = regs[in.rs1] + std::uint64_t(in.imm);
              ctrs.inc(Counter::Loads);
              const Cycles lat =
                  memoryAccess(pipe, addr, size, false, ctrs);
              set_reg(in.rd, mem.read(addr, size), pipe.now + lat);
              break;
          }

          // ---- stores ----
          case Opcode::St1:
          case Opcode::St2:
          case Opcode::St4:
          case Opcode::St8: {
              wait_for(in.rs1);
              wait_for(in.rd); // data register
              const unsigned size = isa::memAccessSize(in.op);
              const Addr addr = regs[in.rs1] + std::uint64_t(in.imm);
              ctrs.inc(Counter::Stores);
              memoryAccess(pipe, addr, size, true, ctrs);
              mem.write(addr, size, regs[in.rd]);
              break;
          }

          // ---- conditional branches ----
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
          case Opcode::Bltu:
          case Opcode::Bgeu: {
              wait_for(in.rs1);
              wait_for(in.rs2);
              const std::uint64_t a = regs[in.rs1];
              const std::uint64_t b = regs[in.rs2];
              bool taken = false;
              switch (in.op) {
                case Opcode::Beq: taken = a == b; break;
                case Opcode::Bne: taken = a != b; break;
                case Opcode::Blt:
                  taken = std::int64_t(a) < std::int64_t(b);
                  break;
                case Opcode::Bge:
                  taken = std::int64_t(a) >= std::int64_t(b);
                  break;
                case Opcode::Bltu: taken = a < b; break;
                case Opcode::Bgeu: taken = a >= b; break;
                default: mbias_panic("unreachable");
              }
              ctrs.inc(Counter::BranchesExecuted);
              if (config_.enableBranchPrediction) {
                  // Attribution reads the index before update() so a
                  // history-folding predictor reports the entry this
                  // prediction actually used.
                  MBIAS_ATTR(pht.record(predictor_->tableIndex(pi.pc),
                                        pi.pc));
                  const bool pred = predictor_->predict(pi.pc);
                  predictor_->update(pi.pc, taken);
                  if (pred != taken) {
                      ctrs.inc(Counter::BranchMispredicts);
                      pipe.now += config_.branchMispredictPenalty;
                      pipe.forceNewGroup = true;
                  }
              }
              if (taken) {
                  ctrs.inc(Counter::TakenBranches);
                  const Addr target = prog.code[pi.targetIdx].pc;
                  if (config_.enableBtb) {
                      MBIAS_ATTR(btb.record(btb_.setIndex(pi.pc), pi.pc));
                      if (!btb_.lookupAndUpdate(pi.pc, target)) {
                          ctrs.inc(Counter::BtbMisses);
                          pipe.now += config_.btbMissPenalty;
                      }
                  }
                  redirect_realign(target);
                  pipe.forceNewGroup = true;
                  next = pi.targetIdx;
              }
              break;
          }

          case Opcode::Jmp: {
              const Addr target = prog.code[pi.targetIdx].pc;
              if (config_.enableBtb) {
                  MBIAS_ATTR(btb.record(btb_.setIndex(pi.pc), pi.pc));
                  if (!btb_.lookupAndUpdate(pi.pc, target)) {
                      ctrs.inc(Counter::BtbMisses);
                      pipe.now += config_.btbMissPenalty;
                  }
              }
              redirect_realign(target);
              pipe.forceNewGroup = true;
              next = pi.targetIdx;
              break;
          }

          case Opcode::Call: {
              wait_for(isa::reg::sp);
              ctrs.inc(Counter::Calls);
              const Addr new_sp = regs[isa::reg::sp] - 8;
              const Addr ret_addr = pi.pc + pi.size;
              ctrs.inc(Counter::Stores);
              memoryAccess(pipe, new_sp, 8, true, ctrs);
              mem.write(new_sp, 8, ret_addr);
              set_reg(isa::reg::sp, new_sp, pipe.now + 1);
              const Addr target = prog.code[pi.targetIdx].pc;
              if (config_.enableBtb) {
                  MBIAS_ATTR(btb.record(btb_.setIndex(pi.pc), pi.pc));
                  if (!btb_.lookupAndUpdate(pi.pc, target)) {
                      ctrs.inc(Counter::BtbMisses);
                      pipe.now += config_.btbMissPenalty;
                  }
              }
              redirect_realign(target);
              pipe.forceNewGroup = true;
              next = pi.targetIdx;
              break;
          }

          case Opcode::Ret: {
              wait_for(isa::reg::sp);
              const Addr sp = regs[isa::reg::sp];
              ctrs.inc(Counter::Loads);
              // Return-address stack: the target is predicted
              // perfectly, so the load latency is off the critical
              // path, but the access still exercises the cache/TLB.
              memoryAccess(pipe, sp, 8, false, ctrs);
              const Addr ret_addr = mem.read(sp, 8);
              set_reg(isa::reg::sp, sp + 8, pipe.now + 1);
              auto it = prog.addrToIdx.find(ret_addr);
              mbias_assert(it != prog.addrToIdx.end(),
                           "corrupted return address 0x", std::hex,
                           ret_addr);
              redirect_realign(ret_addr);
              pipe.forceNewGroup = true;
              next = it->second;
              break;
          }

          case Opcode::Nop:
            ctrs.inc(Counter::NopsExecuted);
            break;

          case Opcode::Halt:
            halted = true;
            break;

          default:
            mbias_panic("bad opcode");
        }

        if (profile) {
            FunctionProfile &fp = profile->functions[cur_fn];
            fp.instructions += 1;
            fp.cycles += pipe.now - prof_now;
            fp.icacheMisses +=
                ctrs.get(Counter::IcacheMisses) - prof_ic;
            fp.dcacheMisses +=
                ctrs.get(Counter::DcacheMisses) - prof_dc;
            fp.branchMispredicts +=
                ctrs.get(Counter::BranchMispredicts) - prof_mp;
            fp.lineSplits += ctrs.get(Counter::LineSplits) - prof_ls;
            fp.aliasStalls += ctrs.get(Counter::AliasStalls) - prof_as;
            fp.calls += ctrs.get(Counter::Calls) - prof_calls;
            fp.l2Misses += ctrs.get(Counter::L2Misses) - prof_l2;
            fp.itlbMisses += ctrs.get(Counter::ItlbMisses) - prof_it;
            fp.dtlbMisses += ctrs.get(Counter::DtlbMisses) - prof_dt;
            fp.btbMisses += ctrs.get(Counter::BtbMisses) - prof_bt;
            fp.stallCycles += ctrs.get(Counter::StallCycles) - prof_st;
            fp.fetchGroups += ctrs.get(Counter::FetchGroups) - prof_fg;
        }

        idx = next;
    }

    attr_ = nullptr;
    ctrs.set(Counter::Cycles, pipe.now);
    ctrs.set(Counter::Instructions, icount);
    rr.halted = halted;
    rr.result = regs[isa::reg::a0];
    return rr;
}


RunResult
Machine::runFast(const toolchain::ProcessImage &image,
                 std::uint64_t max_insts, const ExecutionPlan &plan)
{
    if (config_.core == CoreKind::InOrder)
        return runPlanImpl<false, RunMode::Normal, InOrderCore>(
            image, max_insts, plan, nullptr, NoiseModel::none(), nullptr,
            nullptr);
    return runPlanImpl<false, RunMode::Normal, OooCore>(
        image, max_insts, plan, nullptr, NoiseModel::none(), nullptr,
        nullptr);
}

RunResult
Machine::runTrace(const toolchain::ProcessImage &image,
                  std::uint64_t max_insts,
                  const std::shared_ptr<const ExecutionPlan> &plan)
{
    // The trace tier's batch guards assume the OoO window model;
    // traceTierUsable() keeps in-order backends off this path.
    mbias_assert(config_.core == CoreKind::OutOfOrder,
                 "trace tier requires an out-of-order core model");
    const auto tplan =
        TraceCache::global().get(plan, TraceGeometry::of(config_));
    return runPlanImpl<true, RunMode::Normal, OooCore>(
        image, max_insts, *plan, tplan.get(), NoiseModel::none(), nullptr,
        nullptr);
}

RunResult
Machine::runRecord(const toolchain::ProcessImage &image,
                   std::uint64_t max_insts, const NoiseModel &noise,
                   std::shared_ptr<const FunctionalTrace> *out)
{
    mbias_assert(out, "runRecord needs a trace sink");
    *out = nullptr;
#if MBIAS_SIM_REPLAY_ENABLED
    if (replayTierUsable(*this)) {
        obs::ScopedSpan span("replay-record", "sim");
        const auto plan = PlanCache::global().get(image.program);
        auto trace = std::make_shared<FunctionalTrace>();
        trace->program = image.program;
        trace->gp = image.gp;
        trace->heapBase = image.heapBase;
        trace->entryIdx = image.entryIdx;
        trace->budget = max_insts;
        trace->recordedSp = image.initialSp;
        trace->stackBoundary = image.stackTop >> 1;
        RunResult rr;
#if MBIAS_SIM_TRACE_ENABLED
        if (traceTierUsable(*this)) {
            const auto tplan =
                TraceCache::global().get(plan, TraceGeometry::of(config_));
            rr = runPlanImpl<true, RunMode::Record, OooCore>(
                image, max_insts, *plan, tplan.get(), noise, trace.get(),
                nullptr);
        } else
#endif
        if (config_.core == CoreKind::InOrder)
            rr = runPlanImpl<false, RunMode::Record, InOrderCore>(
                image, max_insts, *plan, nullptr, noise, trace.get(),
                nullptr);
        else
            rr = runPlanImpl<false, RunMode::Record, OooCore>(
                image, max_insts, *plan, nullptr, noise, trace.get(),
                nullptr);
        ReplayCache::global().noteRecord();
        if (!trace->aborted)
            *out = std::move(trace);
        return rr;
    }
#endif
    return run(image, max_insts, noise);
}

RunResult
Machine::runReplay(const toolchain::ProcessImage &image,
                   std::uint64_t max_insts, const NoiseModel &noise,
                   const FunctionalTrace &trace)
{
#if MBIAS_SIM_REPLAY_ENABLED
    if (replayTierUsable(*this)) {
        mbias_assert(trace.matches(image, max_insts),
                     "replaying a trace against a mismatched image");
        const auto plan = PlanCache::global().get(image.program);
        RunResult rr;
#if MBIAS_SIM_TRACE_ENABLED
        if (traceTierUsable(*this)) {
            const auto tplan =
                TraceCache::global().get(plan, TraceGeometry::of(config_));
            rr = runPlanImpl<true, RunMode::Replay, OooCore>(
                image, max_insts, *plan, tplan.get(), noise, nullptr,
                &trace);
        } else
#endif
        if (config_.core == CoreKind::InOrder)
            rr = runPlanImpl<false, RunMode::Replay, InOrderCore>(
                image, max_insts, *plan, nullptr, noise, nullptr, &trace);
        else
            rr = runPlanImpl<false, RunMode::Replay, OooCore>(
                image, max_insts, *plan, nullptr, noise, nullptr, &trace);
        ReplayCache::global().noteReplay();
        return rr;
    }
#endif
    (void)trace;
    return run(image, max_insts, noise);
}

template <bool Traced, Machine::RunMode Mode, class Core>
RunResult
Machine::runPlanImpl(const toolchain::ProcessImage &image,
                     std::uint64_t max_insts, const ExecutionPlan &plan,
                     const TracePlan *tplan, const NoiseModel &noise,
                     FunctionalTrace *rec, const FunctionalTrace *rep)
{
    // The trace tier's op_batch guards prove "zero stall cycles" under
    // the OoO hiding model; an in-order instantiation would make that
    // proof unsound, so it is never generated (traceTierUsable()).
    static_assert(!(Traced && Core::kInOrder),
                  "the trace tier assumes the OoO core model");
    // The contract of this function is bitwise equality with the
    // reference interpreter above (noise disabled, no profile): it
    // performs the same component accesses in the same order with the
    // same arguments, so every counter and the cycle count match
    // exactly.  What changes is the bookkeeping around them:
    //
    //  - dense pre-decoded operands (DecodedOp) instead of PlacedInst
    //    records, and an O(1) return-address table;
    //  - direct-threaded dispatch: every handler ends with its own
    //    computed goto, so the host branch predictor learns per-opcode
    //    successor patterns instead of sharing one switch jump;
    //  - the uarch components' header-inline hot twins (accessLineHot,
    //    accessVpnsHot, recordStoreHot, ...), devirtualized predictor
    //    calls, and hot config fields hoisted into locals;
    //  - functional memory through a small direct-mapped table of page
    //    pointers instead of a hash lookup per access.
    //
    // With Traced = true the loop walks the TracePlan's rewritten op
    // array instead: superblock heads dispatch to op_batch, which
    // either applies the block's precomputed effects in one step or —
    // when its zero-stall guards cannot be proven — falls through to
    // per-op execution of the very same ops (sim/trace.hh).
    //
    // Mode extends the same loop to the record/replay tier
    // (sim/replay.hh).  Record runs normally (noise allowed — the
    // reference's OS-interrupt model is transcribed below) while
    // appending branch outcomes, Ret targets and resolved memory
    // addresses to *rec.  Replay consumes those streams from *rep
    // instead of executing functionally: control flow comes from the
    // branch bits and Ret targets, memory addresses from the stream
    // (stack ones rebased by the image-vs-recording sp delta), and
    // every value computation is dead — only the timing models run.
    // Mode conditionals are plain ifs on a constant, so the Normal
    // instantiations fold them away.
    //
    // Keep every simulated effect in lockstep with run() when touching
    // any tier.
    constexpr bool kRecord = Mode == RunMode::Record;
    constexpr bool kReplay = Mode == RunMode::Replay;

    // Only the components the fast loop actually drives need a reset:
    // the predictor and BTB are shared with the reference path (their
    // hot twins mutate the real tables).  The caches, TLBs and store
    // buffer are replaced wholesale by the shadows below — nothing
    // observes their state here, and run() resets them on entry.
    predictor_->reset();
    btb_.reset();

    const toolchain::LinkedProgram &prog = image.prog();
    mbias_assert(!prog.code.empty(), "empty program");
    mbias_assert(plan.ops.size() == prog.code.size(),
                 "execution plan does not match the program");
    if constexpr (Traced)
        mbias_assert(tplan && tplan->ops.size() == plan.ops.size(),
                     "trace plan does not match the program");

    RunResult rr;
    PerfCounters &ctrs = rr.counters;

    SparseMemory mem;
    if (!kReplay) // replay never reads or writes functional memory
        mem.writeBlock(prog.dataBase, prog.dataInit);

    std::array<std::uint64_t, isa::reg::numRegs> regs{};
    regs[isa::reg::sp] = image.initialSp;
    regs[isa::reg::gp] = image.gp;
    regs[isa::reg::hp] = image.heapBase;

    Pipeline pipe;

    // Hot configuration, hoisted: the reference re-reads these through
    // config_ around opaque calls; here they live in registers.
    const bool model_blocks = config_.enableFetchBlockModel;
    const bool caches_on = config_.enableCaches;
    const bool tlbs_on = config_.enableTlbs;
    const unsigned fetch_width = config_.fetchWidth;
    const Addr fetch_block_bytes = config_.fetchBlockBytes;
    const Addr iline = config_.icache.lineBytes;
    const Cycles i_miss_pen = config_.icache.missPenalty;
    const Cycles l2_miss_pen = config_.l2.missPenalty;
    const unsigned ipage_shift = itlb_.pageShift(); // Tlb asserts pow2
    const Cycles itlb_miss_pen = config_.itlb.missPenalty;
    const Addr dline = config_.dcache.lineBytes;
    const Cycles d_hit_lat = config_.dcache.hitLatency;
    const Cycles d_miss_pen = config_.dcache.missPenalty;
    const unsigned dpage_shift = dtlb_.pageShift();
    const Cycles dtlb_miss_pen = config_.dtlb.missPenalty;
    const bool prefetch_on = config_.enableNextLinePrefetch;
    const bool split_pen_on = config_.enableLineSplitPenalty;
    const Cycles split_pen = config_.lineSplitPenalty;
    const bool sb_alias_on = config_.enableStoreBufferAliasing;
    const Cycles alias_pen = config_.aliasPenalty;
    const Cycles ooo_window = config_.oooWindowCycles;
    const Cycles mul_lat = config_.intMulLatency;
    const Cycles div_lat = config_.intDivLatency;
    const bool bp_on = config_.enableBranchPrediction;
    const bool btb_on = config_.enableBtb;
    const Cycles mispredict_pen = config_.branchMispredictPenalty;
    const Cycles btb_miss_pen = config_.btbMissPenalty;

    // The predictor's concrete type is fixed by the config the
    // instance was built from; resolve it once so every branch calls
    // the non-virtual hot twins.
    uarch::GsharePredictor *gshare = nullptr;
    uarch::BimodalPredictor *bimodal = nullptr;
    if (config_.predictor == PredictorKind::Gshare)
        gshare = static_cast<uarch::GsharePredictor *>(predictor_.get());
    else
        bimodal = static_cast<uarch::BimodalPredictor *>(predictor_.get());

    // Packed-layout twins of the caches and TLBs (see ShadowCache):
    // freshly constructed = freshly reset, so their access outcomes —
    // the only thing the counters observe — match the reference's
    // components access for access.
    ShadowCache s_icache(config_.icache);
    ShadowCache s_dcache(config_.dcache);
    ShadowCache s_l2(config_.l2);
    ShadowTlb s_itlb(config_.itlb);
    ShadowTlb s_dtlb(config_.dtlb);

    // Store-buffer twin in SoA layout: same ring order, same head
    // rotation, same expiry and forwarding rules as StoreBuffer, but
    // the masked addresses sit in their own dense array, so the common
    // no-possible-alias case is one branchless scan of it; only a
    // masked match runs the exact per-entry check.  ~0 marks an empty
    // slot (masked addresses are <= alias_mask, so it never matches).
    const unsigned sb_entries = storeBuffer_.entries();
    const std::uint64_t alias_mask = storeBuffer_.aliasMask();
    const std::uint64_t sb_max_age = storeBuffer_.maxAge();
    std::vector<std::uint64_t> sb_masked(sb_entries, ~std::uint64_t(0));
    std::vector<Addr> sb_addr(sb_entries, 0);
    std::vector<std::uint32_t> sb_size(sb_entries, 0);
    std::vector<std::uint64_t> sb_icount(sb_entries, 0);
    unsigned sb_head = 0;
    const bool sb_bitmap_ok = sb_entries <= 32; ///< bitmap fits a word

    // Inverted index over the masked addresses: sb_index[m] is the
    // bitmap of ring slots currently holding masked address m, kept
    // incrementally by the store path.  It turns the per-load scan of
    // all slots into one table read; the bit order is ring-slot order,
    // so the first-match walk below is unchanged.  Only worth the
    // table for the realistic alias-window sizes (<= 16 bits).
    const bool sb_index_ok =
        sb_bitmap_ok && alias_mask < (std::uint64_t(1) << 16);
    std::vector<std::uint32_t> sb_index(
        sb_index_ok ? std::size_t(alias_mask) + 1 : 0, 0);

    // Exact transcription of StoreBuffer::loadAliases over the shadow
    // arrays: the first live, unexpired, masked-matching entry in ring
    // order decides (clean covering forwarding is free, anything else
    // stalls), exactly as the reference scan does.
    auto sb_aliases = [&](Addr addr, unsigned size)
        __attribute__((noinline)) -> bool {
        const std::uint64_t want = addr & alias_mask;
        for (unsigned i = 0; i < sb_entries; ++i) {
            if (sb_masked[i] != want ||
                sb_icount[i] + sb_max_age < pipe.icount)
                continue;
            return !(sb_addr[i] == addr && sb_size[i] >= size);
        }
        return false;
    };

    auto set_reg = [&](isa::Reg rd, std::uint64_t v, Cycles ready)
        __attribute__((always_inline)) {
        if (rd != isa::reg::zero) {
            if (!kReplay) // replay tracks readiness, never values
                regs[rd] = v;
            pipe.regReady[rd] = ready;
        }
    };
    auto wait_for = [&](isa::Reg r) __attribute__((always_inline)) {
        const Cycles ready = pipe.regReady[r];
        if (ready > pipe.now) {
            const Cycles stall = ready - pipe.now;
            // CoreModel policy: in-order cores expose the whole stall,
            // the OoO window hides up to ooo_window of it.  The OoO
            // branch is token-identical to the pre-backend-layer code.
            Cycles exposed;
            if constexpr (Core::kInOrder)
                exposed = stall;
            else
                exposed = stall - std::min<Cycles>(stall, ooo_window);
            if (exposed) {
                pipe.now += exposed;
                ctrs.inc(Counter::StallCycles, exposed);
            }
        }
    };
    // CoreModel policy: in-order pipes block issue behind a
    // multi-cycle ALU op (busy cycles are exposed stalls, the result
    // is ready right after issue resumes); OoO cores just tag the
    // result with its latency and let wait_for settle it.
    auto alu_ready = [&](Cycles lat)
        __attribute__((always_inline)) -> Cycles {
        if constexpr (Core::kInOrder) {
            if (lat > 1) {
                pipe.now += lat - 1;
                ctrs.inc(Counter::StallCycles, lat - 1);
                return pipe.now + 1;
            }
        }
        return pipe.now + lat;
    };
    // CoreModel policy: in-order front ends refetch when a taken
    // transfer lands inside a fetch block rather than at its start.
    const Cycles fetch_realign_pen = config_.fetchRealignPenalty;
    auto redirect_realign = [&](Addr target)
        __attribute__((always_inline)) {
        if constexpr (Core::kInOrder) {
            if (model_blocks && (target & (fetch_block_bytes - 1)) != 0)
                pipe.now += fetch_realign_pen;
        } else {
            (void)target;
        }
    };

    // Sequential fetch mostly stays within the current line and page;
    // the new-line / new-page work is kept out of line so only the
    // cheap comparisons are replicated per dispatch site.
    auto icache_touch = [&](Addr line) __attribute__((noinline)) {
        if (!s_icache.access(line)) {
            ctrs.inc(Counter::IcacheMisses);
            pipe.now += i_miss_pen;
            if (!s_l2.access(line)) {
                ctrs.inc(Counter::L2Misses);
                pipe.now += l2_miss_pen;
            }
        }
    };
    auto itlb_touch = [&](Addr pc, unsigned size) __attribute__((noinline)) {
        const unsigned misses = s_itlb.accessVpns(
            pc >> ipage_shift, (pc + size - 1) >> ipage_shift);
        if (misses) {
            ctrs.inc(Counter::ItlbMisses, misses);
            pipe.now += misses * itlb_miss_pen;
        }
    };

    // Transcription of fetchAccounting() over the hoisted locals; the
    // ITLB page number reduces to a shift for power-of-two page sizes
    // where the reference divides every instruction.
    auto fetch = [&](Addr pc, unsigned size) __attribute__((always_inline)) {
        const bool new_group = pipe.forceNewGroup || pipe.groupSlots == 0 ||
                               (model_blocks && pc >= pipe.groupBlockEnd);
        if (new_group) {
            pipe.now += 1;
            ctrs.inc(Counter::FetchGroups);
            pipe.groupSlots = fetch_width;
            pipe.groupBlockEnd =
                model_blocks
                    ? alignDown(pc, fetch_block_bytes) + fetch_block_bytes
                    : ~Addr(0);
            pipe.forceNewGroup = false;
        }
        pipe.groupSlots -= 1;
        if (model_blocks && pc + size > pipe.groupBlockEnd)
            pipe.groupSlots = 0;

        if (caches_on) {
            const Addr first = alignDown(pc, iline);
            const Addr last = alignDown(pc + size - 1, iline);
            for (Addr line = first; line <= last; line += iline) {
                if (line == pipe.lastCodeLine)
                    continue;
                pipe.lastCodeLine = line;
                icache_touch(line);
            }
        }
        if (tlbs_on) {
            const Addr page = pc >> ipage_shift;
            if (page != pipe.lastCodePage) {
                pipe.lastCodePage = page;
                itlb_touch(pc, size);
            }
        }
    };

    // L1D miss path (L2, optional next-line prefetch), out of line.
    auto dcache_miss = [&](Addr line) __attribute__((noinline)) -> Cycles {
        Cycles lat = d_miss_pen;
        if (!s_l2.access(line)) {
            ctrs.inc(Counter::L2Misses);
            lat += l2_miss_pen;
        }
        if (prefetch_on) {
            // Background fill of the next line; no demand latency, but
            // it can pollute (and be perturbed by) set placement.
            ctrs.inc(Counter::PrefetchesIssued);
            s_dcache.access(line + dline);
            s_l2.access(line + dline);
        }
        return lat;
    };

    // Transcription of memoryAccess(): same component accesses in the
    // same order, through the inline hot twins.  is_store is constant
    // at every call site, so the branches fold away.
    auto mem_access = [&](Addr addr, unsigned size, bool is_store)
        __attribute__((always_inline)) -> Cycles {
        Cycles lat = is_store ? 0 : d_hit_lat;

        if (tlbs_on) {
            const unsigned misses = s_dtlb.accessVpns(
                addr >> dpage_shift, (addr + size - 1) >> dpage_shift);
            if (misses) {
                ctrs.inc(Counter::DtlbMisses, misses);
                lat += misses * dtlb_miss_pen;
            }
        }

        const Addr first = alignDown(addr, dline);
        const Addr last = alignDown(addr + size - 1, dline);
        if (caches_on) {
            for (Addr line = first; line <= last; line += dline) {
                if (!s_dcache.access(line)) {
                    ctrs.inc(Counter::DcacheMisses);
                    lat += dcache_miss(line);
                }
            }
        }
        if (last != first) {
            ctrs.inc(Counter::LineSplits);
            if (split_pen_on)
                lat += split_pen;
        }

        if (is_store) {
            // A line-crossing store occupies the store port for an
            // extra cycle (a structural resource the OoO window cannot
            // hide).
            if (last != first && split_pen_on)
                pipe.now += 1;
            if (sb_index_ok) {
                const std::uint64_t old = sb_masked[sb_head];
                if (old != ~std::uint64_t(0))
                    sb_index[old] &= ~(std::uint32_t(1) << sb_head);
                sb_index[addr & alias_mask] |=
                    std::uint32_t(1) << sb_head;
            }
            sb_masked[sb_head] = addr & alias_mask;
            sb_addr[sb_head] = addr;
            sb_size[sb_head] = size;
            sb_icount[sb_head] = pipe.icount;
            if (++sb_head == sb_entries)
                sb_head = 0;
            return 0; // the store buffer otherwise hides store latency
        }
        if (sb_alias_on) {
            const std::uint64_t want = addr & alias_mask;
            if (sb_bitmap_ok) {
                // The masked-match bitmap comes straight from the
                // inverted index (or one scan pass when the window is
                // too wide for a table); the first unexpired match in
                // ring order then decides, exactly like the reference
                // scan (expired matches are skipped, the scan
                // continues).
                std::uint32_t match;
                if (sb_index_ok) {
                    match = sb_index[want];
                } else {
                    const std::uint64_t *sbm = sb_masked.data();
                    match = 0;
                    for (unsigned i = 0; i < sb_entries; ++i)
                        match |= std::uint32_t(sbm[i] == want) << i;
                }
                while (match) {
                    const unsigned i = unsigned(std::countr_zero(match));
                    match &= match - 1;
                    if (sb_icount[i] + sb_max_age >= pipe.icount) {
                        if (!(sb_addr[i] == addr && sb_size[i] >= size)) {
                            ctrs.inc(Counter::AliasStalls);
                            lat += alias_pen;
                        }
                        break;
                    }
                }
            } else if (sb_aliases(addr, size)) {
                ctrs.inc(Counter::AliasStalls);
                lat += alias_pen;
            }
        }
        return lat;
    };

    // Functional memory through a small direct-mapped memo of page
    // data pointers: the reference pays a hash lookup on every access;
    // here only a page's first touch does (pointers stay valid until
    // clear() — pages are never freed).  Values are assembled exactly
    // like SparseMemory::read/write; cross-page accesses fall back.
    constexpr Addr page_bytes = SparseMemory::page_bytes;
    struct ReadMemo
    {
        Addr vpn = ~Addr(0);
        const std::uint8_t *data = nullptr;
    };
    struct WriteMemo
    {
        Addr vpn = ~Addr(0);
        std::uint8_t *data = nullptr;
    };
    std::array<ReadMemo, 8> rmemo{};
    std::array<WriteMemo, 8> wmemo{};

    auto mem_read = [&](Addr addr, unsigned size)
        __attribute__((always_inline)) -> std::uint64_t {
        const Addr off = addr & (page_bytes - 1);
        if (off + size <= page_bytes) {
            const Addr vpn = addr / page_bytes;
            ReadMemo &m = rmemo[vpn & 7];
            if (m.vpn != vpn) {
                // Absent pages are read as zero and not memoized (a
                // later store may allocate them).
                const std::uint8_t *p = mem.pageDataIfPresent(addr);
                if (!p)
                    return 0;
                m.vpn = vpn;
                m.data = p;
            }
            const std::uint8_t *b = m.data + off;
            switch (size) {
              case 1:
                return b[0];
              case 2:
                return std::uint64_t(b[0]) | std::uint64_t(b[1]) << 8;
              case 4:
                return std::uint64_t(b[0]) | std::uint64_t(b[1]) << 8 |
                       std::uint64_t(b[2]) << 16 | std::uint64_t(b[3]) << 24;
              default:
                return std::uint64_t(b[0]) | std::uint64_t(b[1]) << 8 |
                       std::uint64_t(b[2]) << 16 | std::uint64_t(b[3]) << 24 |
                       std::uint64_t(b[4]) << 32 | std::uint64_t(b[5]) << 40 |
                       std::uint64_t(b[6]) << 48 | std::uint64_t(b[7]) << 56;
            }
        }
        return mem.read(addr, size);
    };
    auto mem_write = [&](Addr addr, unsigned size, std::uint64_t value)
        __attribute__((always_inline)) {
        const Addr off = addr & (page_bytes - 1);
        if (off + size <= page_bytes) {
            const Addr vpn = addr / page_bytes;
            WriteMemo &m = wmemo[vpn & 7];
            if (m.vpn != vpn) {
                m.vpn = vpn;
                m.data = mem.pageData(addr);
            }
            std::uint8_t *b = m.data + off;
            switch (size) {
              case 8:
                b[7] = std::uint8_t(value >> 56);
                b[6] = std::uint8_t(value >> 48);
                b[5] = std::uint8_t(value >> 40);
                b[4] = std::uint8_t(value >> 32);
                [[fallthrough]];
              case 4:
                b[3] = std::uint8_t(value >> 24);
                b[2] = std::uint8_t(value >> 16);
                [[fallthrough]];
              case 2:
                b[1] = std::uint8_t(value >> 8);
                [[fallthrough]];
              default:
                b[0] = std::uint8_t(value);
            }
            return;
        }
        mem.write(addr, size, value);
    };

    // OS-interrupt noise, transcribed from the reference loop: same
    // RNG stream (one nextDouble per schedule, two next() per evicted
    // line pair), same schedule arithmetic, same eviction order
    // (dcache set then icache set), same lastCodeLine reset — so noisy
    // record/replay runs are bitwise identical to the reference.
    // Normal-mode runs are gated noise-free by run(), so noise_on
    // folds to false there and the checks vanish.
    Rng noise_rng(noise.seed ^ 0x05e1f00dULL);
    Cycles next_interrupt = ~Cycles(0);
    const bool noise_on = Mode != RunMode::Normal && noise.enabled;
    const Cycles noise_cost = noise.costCycles;
    const unsigned noise_evict = noise.linesEvictedPerInterrupt;
    auto schedule_interrupt = [&](Cycles from) {
        const double jitter = 0.5 + noise_rng.nextDouble();
        next_interrupt =
            from + Cycles(double(noise.meanIntervalCycles) * jitter);
    };
    auto do_interrupt = [&]() __attribute__((noinline)) {
        ctrs.inc(Counter::OsInterrupts);
        pipe.now += noise_cost;
        for (unsigned e = 0; e < noise_evict; ++e) {
            s_dcache.invalidateSet(noise_rng.next());
            s_icache.invalidateSet(noise_rng.next());
        }
        pipe.lastCodeLine = ~Addr(0); // force an icache re-access
        schedule_interrupt(pipe.now);
    };
    if (noise_on)
        schedule_interrupt(0);

    // DVFS frequency steps, transcribed from the reference loop: same
    // independent RNG stream (one nextDouble per schedule, one per
    // step), same lump charge, no state eviction.  Like noise_on,
    // dvfs_on folds to false in Normal mode.
    Rng dvfs_rng(noise.seed ^ 0xd7f5c10cULL);
    Cycles next_dvfs = ~Cycles(0);
    const bool dvfs_on = Mode != RunMode::Normal && noise.dvfsEnabled;
    auto schedule_dvfs = [&](Cycles from) {
        const double jitter = 0.5 + dvfs_rng.nextDouble();
        next_dvfs =
            from + Cycles(double(noise.dvfsMeanIntervalCycles) * jitter);
    };
    auto do_dvfs_step = [&]() __attribute__((noinline)) {
        const double rj = 0.5 + dvfs_rng.nextDouble();
        const Cycles residency =
            Cycles(double(noise.dvfsMeanResidencyCycles) * rj);
        pipe.now += noise.dvfsTransitionCycles +
                    residency * noise.dvfsSlowdownPercent / 100;
        schedule_dvfs(pipe.now + residency);
    };
    if (dvfs_on)
        schedule_dvfs(0);

    // Record-mode stream sinks.  One running byte estimate caps the
    // footprint: past FunctionalTrace::kMaxBytes the streams stop
    // growing, the run completes normally, and the trace is marked
    // aborted (the caller then negative-caches the key).
    FunctionalTrace *const ft_rec = rec;
    std::uint64_t rec_bits = 0; ///< branch-bit accumulator, LSB first
    unsigned rec_nbits = 0;
    std::uint64_t rec_bytes = 0;
    bool rec_ok = true;
    auto rec_branch = [&](bool taken) __attribute__((always_inline)) {
        rec_bits |= std::uint64_t(taken) << rec_nbits;
        if (++rec_nbits == 64) {
            if (__builtin_expect(rec_ok, 1)) {
                ft_rec->branchBits.push_back(rec_bits);
                rec_ok = (rec_bytes += 8) < FunctionalTrace::kMaxBytes;
            }
            rec_bits = 0;
            rec_nbits = 0;
        }
        ++ft_rec->branchCount;
    };
    auto rec_mem = [&](Addr addr) __attribute__((always_inline)) {
        if (__builtin_expect(rec_ok, 1)) {
            ft_rec->memAddrs.push_back(addr);
            rec_ok = (rec_bytes += sizeof(Addr)) <
                     FunctionalTrace::kMaxBytes;
        }
    };
    auto rec_ret = [&](std::uint32_t target) __attribute__((always_inline)) {
        if (__builtin_expect(rec_ok, 1)) {
            ft_rec->retTargets.push_back(target);
            rec_ok = (rec_bytes += 4) < FunctionalTrace::kMaxBytes;
        }
    };

    // Replay-mode stream cursors.  The streams are exact by
    // construction (same program, same entry, same budget ⇒ same
    // functional execution), so exhaustion mid-run means the replay
    // preconditions were violated — assert, don't wander.
    const std::uint64_t *rp_bits_data = nullptr;
    std::size_t rp_bits_n = 0;
    const std::uint32_t *rp_ret_data = nullptr;
    std::size_t rp_ret_n = 0;
    const Addr *rp_mem_data = nullptr;
    std::size_t rp_mem_n = 0;
    std::uint64_t rp_delta = 0; ///< stack rebase: initialSp - recordedSp
    Addr rp_boundary = ~Addr(0);
    if (kReplay) {
        rp_bits_data = rep->branchBits.data();
        rp_bits_n = rep->branchBits.size();
        rp_ret_data = rep->retTargets.data();
        rp_ret_n = rep->retTargets.size();
        rp_mem_data = rep->memAddrs.data();
        rp_mem_n = rep->memAddrs.size();
        rp_delta = image.initialSp - rep->recordedSp; // mod-2^64 delta
        rp_boundary = rep->stackBoundary;
    }
    std::uint64_t rp_bit = 0;
    std::size_t rp_bitword = 0;
    std::size_t rp_ret = 0;
    std::size_t rp_mem = 0;
    auto rp_taken = [&]() __attribute__((always_inline)) -> bool {
        mbias_assert(rp_bitword < rp_bits_n,
                     "replay branch stream exhausted");
        const bool t = (rp_bits_data[rp_bitword] >> rp_bit) & 1;
        if (++rp_bit == 64) {
            rp_bit = 0;
            ++rp_bitword;
        }
        return t;
    };
    auto rp_addr = [&]() __attribute__((always_inline)) -> Addr {
        mbias_assert(rp_mem < rp_mem_n, "replay memory stream exhausted");
        const Addr a = rp_mem_data[rp_mem++];
        return a >= rp_boundary ? a + rp_delta : a;
    };
    auto rp_ret_target = [&]() __attribute__((always_inline))
        -> std::uint32_t {
        mbias_assert(rp_ret < rp_ret_n, "replay return stream exhausted");
        return rp_ret_data[rp_ret++];
    };

    // The traced tier walks the TracePlan's rewritten op array; both
    // arrays decode the same program, only the dispatch tags of
    // superblock heads differ.
    const DecodedOp *const ops =
        Traced ? tplan->ops.data() : plan.ops.data();

    // Trace-tier tallies and replay scratch (unused on the fast tier):
    // tr_pens collects (position, penalty) pairs of replayed icache /
    // ITLB misses inside the current batch, so exit register-ready
    // times can include the penalties charged at or before each
    // register's last write.  The per-batch cursors live here — not in
    // the handler — because locals declared between computed-goto
    // labels defeat the compiler's initialization analysis.
    std::uint64_t tr_batched = 0, tr_fallbacks = 0;
    std::vector<std::pair<std::uint32_t, Cycles>> tr_pens;
    const TraceBlock *tb = nullptr;
    Cycles tr_now0 = 0;      ///< pipe.now at batch entry
    std::uint32_t tr_srow = 0; ///< fetch-row index (entry groupSlots)
    const TraceBlock::FnOp *fp = nullptr, *fe = nullptr;

    std::uint64_t icount = 0;
    std::uint32_t idx = image.entryIdx;
    bool halted = false;
    const DecodedOp *d = nullptr;

    // Shared tail of every conditional branch (reference order:
    // BranchesExecuted, predict+train, then the taken path).  Replay
    // overrides the caller's (dead-value) outcome with the recorded
    // bit; Record appends the live outcome to the stream.
    auto do_branch = [&](const DecodedOp &b, bool taken)
        __attribute__((always_inline)) {
        if (kReplay)
            taken = rp_taken();
        else if (kRecord)
            rec_branch(taken);
        ctrs.inc(Counter::BranchesExecuted);
        if (bp_on) {
            bool pred;
            if (gshare) {
                pred = gshare->predictHot(b.pc);
                gshare->updateHot(b.pc, taken);
            } else {
                pred = bimodal->predictHot(b.pc);
                bimodal->updateHot(b.pc, taken);
            }
            if (pred != taken) {
                ctrs.inc(Counter::BranchMispredicts);
                pipe.now += mispredict_pen;
                pipe.forceNewGroup = true;
            }
        }
        if (taken) {
            ctrs.inc(Counter::TakenBranches);
            const Addr target = ops[b.targetIdx].pc;
            if (btb_on && !btb_.lookupAndUpdateHot(b.pc, target)) {
                ctrs.inc(Counter::BtbMisses);
                pipe.now += btb_miss_pen;
            }
            redirect_realign(target);
            pipe.forceNewGroup = true;
            idx = b.targetIdx;
        } else {
            ++idx;
        }
    };

    // Handler addresses indexed by Opcode value; order must match the
    // enum exactly (plan.cc validated every op at build time).  One
    // extra slot handles the trace tier's batch pseudo-opcode — only
    // a TracePlan's rewritten array ever carries it, so the fast tier
    // pays nothing for the entry.
    static const void *const kDispatch[] = {
        &&op_add, &&op_sub, &&op_mul, &&op_divu, &&op_remu, &&op_and,
        &&op_or, &&op_xor, &&op_sll, &&op_srl, &&op_sra, &&op_slt,
        &&op_sltu, &&op_addi, &&op_andi, &&op_ori, &&op_xori, &&op_slli,
        &&op_srli, &&op_srai, &&op_slti, &&op_li, &&op_la, &&op_ld,
        &&op_ld, &&op_ld, &&op_ld, &&op_st, &&op_st, &&op_st, &&op_st,
        &&op_beq, &&op_bne, &&op_blt, &&op_bge, &&op_bltu, &&op_bgeu,
        &&op_jmp, &&op_call, &&op_ret, &&op_nop, &&op_halt, &&op_batch,
    };
    static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                      std::size_t(Opcode::NumOpcodes) + 1,
                  "dispatch table out of sync with the opcode enum");

// One budget check + fetch + threaded jump between every pair of
// instructions; each expansion gives its handler a private dispatch
// branch.  The noise check sits where the reference loop has it —
// after the budget check, before fetch — and folds away in Normal
// mode (noise_on is constant false there).
#define MBIAS_DISPATCH()                                                    \
    do {                                                                    \
        if (__builtin_expect(icount >= max_insts, 0))                       \
            goto run_done;                                                  \
        if (noise_on && __builtin_expect(pipe.now >= next_interrupt, 0))    \
            do_interrupt();                                                 \
        if (dvfs_on && __builtin_expect(pipe.now >= next_dvfs, 0))          \
            do_dvfs_step();                                                 \
        d = ops + idx;                                                      \
        ++icount;                                                           \
        fetch(d->pc, d->size);                                              \
        goto *kDispatch[std::size_t(d->op)];                                \
    } while (0)

    MBIAS_DISPATCH();

  op_add:
    wait_for(d->rs1);
    wait_for(d->rs2);
    set_reg(d->rd, regs[d->rs1] + regs[d->rs2], pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_sub:
    wait_for(d->rs1);
    wait_for(d->rs2);
    set_reg(d->rd, regs[d->rs1] - regs[d->rs2], pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_mul:
    wait_for(d->rs1);
    wait_for(d->rs2);
    set_reg(d->rd, regs[d->rs1] * regs[d->rs2], alu_ready(mul_lat));
    ++idx;
    MBIAS_DISPATCH();

  op_divu: {
      wait_for(d->rs1);
      wait_for(d->rs2);
      const std::uint64_t a = regs[d->rs1];
      const std::uint64_t b = regs[d->rs2];
      set_reg(d->rd, b == 0 ? ~std::uint64_t(0) : a / b,
              alu_ready(div_lat));
      ++idx;
      MBIAS_DISPATCH();
  }

  op_remu: {
      wait_for(d->rs1);
      wait_for(d->rs2);
      const std::uint64_t a = regs[d->rs1];
      const std::uint64_t b = regs[d->rs2];
      set_reg(d->rd, b == 0 ? a : a % b, alu_ready(div_lat));
      ++idx;
      MBIAS_DISPATCH();
  }

  op_and:
    wait_for(d->rs1);
    wait_for(d->rs2);
    set_reg(d->rd, regs[d->rs1] & regs[d->rs2], pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_or:
    wait_for(d->rs1);
    wait_for(d->rs2);
    set_reg(d->rd, regs[d->rs1] | regs[d->rs2], pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_xor:
    wait_for(d->rs1);
    wait_for(d->rs2);
    set_reg(d->rd, regs[d->rs1] ^ regs[d->rs2], pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_sll:
    wait_for(d->rs1);
    wait_for(d->rs2);
    set_reg(d->rd, regs[d->rs1] << (regs[d->rs2] & 63), pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_srl:
    wait_for(d->rs1);
    wait_for(d->rs2);
    set_reg(d->rd, regs[d->rs1] >> (regs[d->rs2] & 63), pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_sra:
    wait_for(d->rs1);
    wait_for(d->rs2);
    set_reg(d->rd,
            std::uint64_t(std::int64_t(regs[d->rs1]) >> (regs[d->rs2] & 63)),
            pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_slt:
    wait_for(d->rs1);
    wait_for(d->rs2);
    set_reg(d->rd,
            std::int64_t(regs[d->rs1]) < std::int64_t(regs[d->rs2]) ? 1 : 0,
            pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_sltu:
    wait_for(d->rs1);
    wait_for(d->rs2);
    set_reg(d->rd, regs[d->rs1] < regs[d->rs2] ? 1 : 0, pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_addi:
    wait_for(d->rs1);
    set_reg(d->rd, regs[d->rs1] + std::uint64_t(d->imm), pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_andi:
    wait_for(d->rs1);
    set_reg(d->rd, regs[d->rs1] & std::uint64_t(d->imm), pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_ori:
    wait_for(d->rs1);
    set_reg(d->rd, regs[d->rs1] | std::uint64_t(d->imm), pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_xori:
    wait_for(d->rs1);
    set_reg(d->rd, regs[d->rs1] ^ std::uint64_t(d->imm), pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_slli:
    wait_for(d->rs1);
    set_reg(d->rd, regs[d->rs1] << (std::uint64_t(d->imm) & 63),
            pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_srli:
    wait_for(d->rs1);
    set_reg(d->rd, regs[d->rs1] >> (std::uint64_t(d->imm) & 63),
            pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_srai:
    wait_for(d->rs1);
    set_reg(d->rd,
            std::uint64_t(std::int64_t(regs[d->rs1]) >>
                          (std::uint64_t(d->imm) & 63)),
            pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_slti:
    wait_for(d->rs1);
    set_reg(d->rd, std::int64_t(regs[d->rs1]) < d->imm ? 1 : 0,
            pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_li:
    set_reg(d->rd, std::uint64_t(d->imm), pipe.now + 1);
    ++idx;
    MBIAS_DISPATCH();

  op_ld: {
      wait_for(d->rs1);
      const unsigned size = d->accessSize;
      const Addr addr = kReplay
                            ? rp_addr()
                            : regs[d->rs1] + std::uint64_t(d->imm);
      if (kRecord)
          rec_mem(addr);
      ctrs.inc(Counter::Loads);
      pipe.icount = icount; // only memory ops observe it
      const Cycles lat = mem_access(addr, size, false);
      set_reg(d->rd, kReplay ? 0 : mem_read(addr, size), pipe.now + lat);
      ++idx;
      MBIAS_DISPATCH();
  }

  op_st: {
      wait_for(d->rs1);
      wait_for(d->rd); // data register
      const unsigned size = d->accessSize;
      const Addr addr = kReplay
                            ? rp_addr()
                            : regs[d->rs1] + std::uint64_t(d->imm);
      if (kRecord)
          rec_mem(addr);
      ctrs.inc(Counter::Stores);
      pipe.icount = icount;
      mem_access(addr, size, true);
      if (!kReplay)
          mem_write(addr, size, regs[d->rd]);
      ++idx;
      MBIAS_DISPATCH();
  }

  op_beq:
    wait_for(d->rs1);
    wait_for(d->rs2);
    do_branch(*d, regs[d->rs1] == regs[d->rs2]);
    MBIAS_DISPATCH();

  op_bne:
    wait_for(d->rs1);
    wait_for(d->rs2);
    do_branch(*d, regs[d->rs1] != regs[d->rs2]);
    MBIAS_DISPATCH();

  op_blt:
    wait_for(d->rs1);
    wait_for(d->rs2);
    do_branch(*d, std::int64_t(regs[d->rs1]) < std::int64_t(regs[d->rs2]));
    MBIAS_DISPATCH();

  op_bge:
    wait_for(d->rs1);
    wait_for(d->rs2);
    do_branch(*d, std::int64_t(regs[d->rs1]) >= std::int64_t(regs[d->rs2]));
    MBIAS_DISPATCH();

  op_bltu:
    wait_for(d->rs1);
    wait_for(d->rs2);
    do_branch(*d, regs[d->rs1] < regs[d->rs2]);
    MBIAS_DISPATCH();

  op_bgeu:
    wait_for(d->rs1);
    wait_for(d->rs2);
    do_branch(*d, regs[d->rs1] >= regs[d->rs2]);
    MBIAS_DISPATCH();

  op_jmp: {
      const Addr target = ops[d->targetIdx].pc;
      if (btb_on && !btb_.lookupAndUpdateHot(d->pc, target)) {
          ctrs.inc(Counter::BtbMisses);
          pipe.now += btb_miss_pen;
      }
      redirect_realign(target);
      pipe.forceNewGroup = true;
      idx = d->targetIdx;
      MBIAS_DISPATCH();
  }

  op_call: {
      wait_for(isa::reg::sp);
      ctrs.inc(Counter::Calls);
      const Addr new_sp =
          kReplay ? rp_addr() : regs[isa::reg::sp] - 8;
      if (kRecord)
          rec_mem(new_sp);
      const Addr ret_addr = d->pc + d->size;
      ctrs.inc(Counter::Stores);
      pipe.icount = icount;
      mem_access(new_sp, 8, true);
      if (!kReplay)
          mem_write(new_sp, 8, ret_addr);
      set_reg(isa::reg::sp, new_sp, pipe.now + 1);
      const Addr target = ops[d->targetIdx].pc;
      if (btb_on && !btb_.lookupAndUpdateHot(d->pc, target)) {
          ctrs.inc(Counter::BtbMisses);
          pipe.now += btb_miss_pen;
      }
      redirect_realign(target);
      pipe.forceNewGroup = true;
      idx = d->targetIdx;
      MBIAS_DISPATCH();
  }

  op_ret: {
      wait_for(isa::reg::sp);
      const Addr sp = kReplay ? rp_addr() : regs[isa::reg::sp];
      if (kRecord)
          rec_mem(sp);
      ctrs.inc(Counter::Loads);
      pipe.icount = icount;
      // Return-address stack: the target is predicted perfectly, so
      // the load latency is off the critical path, but the access
      // still exercises the cache/TLB.
      mem_access(sp, 8, false);
      std::uint32_t t;
      if (kReplay) {
          // The resolved code index was recorded; the functional load
          // it came from never happens here.
          t = rp_ret_target();
      } else {
          const Addr ret_addr = mem_read(sp, 8);
          // O(1) return-address table, same domain as the reference's
          // addrToIdx hash map.
          const Addr off = ret_addr - plan.codeBase;
          t = ExecutionPlan::kNoIndex;
          if (off < plan.idxByOffset.size())
              t = plan.idxByOffset[std::size_t(off)];
          mbias_assert(t != ExecutionPlan::kNoIndex,
                       "corrupted return address 0x", std::hex, ret_addr);
          if (kRecord)
              rec_ret(t);
      }
      set_reg(isa::reg::sp, sp + 8, pipe.now + 1);
      redirect_realign(ops[t].pc);
      pipe.forceNewGroup = true;
      idx = t;
      MBIAS_DISPATCH();
  }

  op_nop:
    ctrs.inc(Counter::NopsExecuted);
    ++idx;
    MBIAS_DISPATCH();

  op_halt:
    halted = true;
    goto run_done;

  op_la:
    mbias_panic("unresolved La reached the simulator");

  op_batch:
    if constexpr (!Traced) {
        mbias_panic("batch pseudo-op reached the fast tier");
    } else {
        tb = &tplan->blocks[d->targetIdx];

        // Guards: commit only when the per-op walk provably charges
        // zero stall cycles and runs to the block's end —
        //  (1) the instruction budget covers all len ops (the head is
        //      already counted by the dispatch that got us here);
        //  (2) every in-block producer read in-block has its latency
        //      hidden by the OoO window;
        //  (3) every live-in register is ready within the window at
        //      entry (now only grows, so the exposed stall at any
        //      later read is bounded by its slack here).
        Cycles max_lat = 0;
        if (tb->latClassMask & 1)
            max_lat = 1;
        if (tb->latClassMask & 2)
            max_lat = std::max(max_lat, mul_lat);
        if (tb->latClassMask & 4)
            max_lat = std::max(max_lat, div_lat);
        bool batch_ok =
            icount + tb->len - 1 <= max_insts && max_lat <= ooo_window;
        if (batch_ok) {
            const Cycles limit = pipe.now + ooo_window;
            std::uint32_t m = tb->liveInMask;
            while (m) {
                const unsigned r = unsigned(std::countr_zero(m));
                m &= m - 1;
                if (pipe.regReady[r] > limit) {
                    batch_ok = false;
                    break;
                }
            }
        }
        if ((noise_on || dvfs_on) && batch_ok) {
            // (4) no OS interrupt or DVFS step can fire inside the
            // block: bound the batch's cycle advance from above (entry
            // fetch row plus every line/page touch missing) — now only
            // grows through the per-op walk and the guards above prove
            // zero stalls, so if even the bound stays short of the
            // next event, no mid-block dispatch could have fired it,
            // and the post-block dispatch re-checks with identical
            // state.
            const Cycles next_event =
                std::min(noise_on ? next_interrupt : ~Cycles(0),
                         dvfs_on ? next_dvfs : ~Cycles(0));
            const Cycles exit_base =
                pipe.now + tb->rows[pipe.groupSlots].groups;
            Cycles pen_ub =
                Cycles(tb->lines.size()) * (i_miss_pen + l2_miss_pen) +
                Cycles(2 * tb->pages.size()) * itlb_miss_pen;
            if (exit_base + pen_ub >= next_event) {
                // Near the interrupt the all-miss bound refuses almost
                // every block; tighten it with a read-only residency
                // probe.  If every block line (page) is resident right
                // now, the walk inserts nothing into that structure,
                // so nothing is evicted and — by induction over the
                // block's accesses — every one hits: that structure's
                // true penalty is exactly zero.  Any probe miss keeps
                // the pessimistic term (an insertion can cascade
                // evictions within the block).
                pen_ub = 0;
                for (const auto &lt : tb->lines) {
                    if (!s_icache.contains(lt.line)) {
                        pen_ub += Cycles(tb->lines.size()) *
                                  (i_miss_pen + l2_miss_pen);
                        break;
                    }
                }
                for (const auto &pt : tb->pages) {
                    if (!s_itlb.containsVpns(pt.firstVpn, pt.lastVpn)) {
                        pen_ub += Cycles(2 * tb->pages.size()) *
                                  itlb_miss_pen;
                        break;
                    }
                }
                if (exit_base + pen_ub >= next_event)
                    batch_ok = false;
            }
        }
        if (__builtin_expect(!batch_ok, 0)) {
            // Fall back before any state was touched: dispatch the
            // original head per-op; execution then walks the run
            // instruction by instruction, exactly like the fast tier.
            ++tr_fallbacks;
            d = &tb->headOp;
            goto *kDispatch[std::size_t(d->op)];
        }

        tr_now0 = pipe.now;
        tr_srow = pipe.groupSlots;

        // Replay the block's icache-line and ITLB-page crossings
        // against the shadow structures (same accesses in the same
        // order as the per-op walk; the two structures never
        // interleave observably).  Misses keep their op position so
        // exit regReady times below can include them.
        tr_pens.clear();
        Cycles pen = 0;
        for (const auto &lt : tb->lines) {
            if (!s_icache.access(lt.line)) {
                ctrs.inc(Counter::IcacheMisses);
                Cycles p = i_miss_pen;
                if (!s_l2.access(lt.line)) {
                    ctrs.inc(Counter::L2Misses);
                    p += l2_miss_pen;
                }
                pen += p;
                tr_pens.emplace_back(lt.pos, p);
            }
        }
        if (!tb->lines.empty())
            pipe.lastCodeLine = tb->lines.back().line;
        for (const auto &pt : tb->pages) {
            const unsigned misses =
                s_itlb.accessVpns(pt.firstVpn, pt.lastVpn);
            if (misses) {
                ctrs.inc(Counter::ItlbMisses, misses);
                const Cycles p = misses * itlb_miss_pen;
                pen += p;
                tr_pens.emplace_back(pt.pos, p);
            }
        }
        if (!tb->pages.empty())
            pipe.lastCodePage = tb->pages.back().firstVpn;

        // One fused cycle/counter delta for ops 1..len-1.
        const TraceBlock::FetchRow &row = tb->rows[tr_srow];
        pipe.now = tr_now0 + row.groups + pen;
        ctrs.inc(Counter::FetchGroups, row.groups);
        pipe.groupSlots = row.exitSlots;
        pipe.groupBlockEnd = row.exitBlockEnd;
        if (tb->nopCount)
            ctrs.inc(Counter::NopsExecuted, tb->nopCount);
        icount += tb->len - 1;
        tr_batched += tb->len;

        // One register-dataflow step: the same arithmetic the per-op
        // handlers do, minus dispatch, fetch and timing bookkeeping.
        // Direct-threaded like the outer interpreter — each fn handler
        // jumps straight to the next op's handler, so the loop costs
        // one (well-predicted) indirect branch per op instead of a
        // switch dispatch plus a back edge.  FnOp opcodes are the
        // first 22 enumerators, validated by TracePlan::build; there
        // is no range backstop, matching the outer dispatch table.
        // Replay skips the dataflow step wholesale: batched ops are
        // value-producing ALU only, and replay never reads a value.
        // The rows/lines/pages/writes bookkeeping above is address-
        // derived and already applied.  (Plain if, not constexpr —
        // the computed-goto labels inside must exist in every
        // instantiation.)
        if (!kReplay) {
            static_assert(std::size_t(Opcode::Li) == 21,
                          "fn dispatch assumes Add..Li are dense");
            static const void *const kFn[] = {
                &&fn_add, &&fn_sub, &&fn_mul, &&fn_divu, &&fn_remu,
                &&fn_and, &&fn_or, &&fn_xor, &&fn_sll, &&fn_srl,
                &&fn_sra, &&fn_slt, &&fn_sltu, &&fn_addi, &&fn_andi,
                &&fn_ori, &&fn_xori, &&fn_slli, &&fn_srli, &&fn_srai,
                &&fn_slti, &&fn_li,
            };
            static_assert(sizeof(kFn) / sizeof(kFn[0]) ==
                              std::size_t(Opcode::Li) + 1,
                          "one fn handler per value-producing op");
            fp = tb->fnOps.data();
            fe = fp + tb->fnOps.size();
            if (fp == fe)
                goto fn_done;
            goto *kFn[std::size_t(fp->op)];

#define MBIAS_FN(label, expr)                                           \
  label:                                                                \
    regs[fp->rd] = (expr);                                              \
    if (++fp == fe)                                                     \
        goto fn_done;                                                   \
    goto *kFn[std::size_t(fp->op)];

            MBIAS_FN(fn_add, regs[fp->rs1] + regs[fp->rs2])
            MBIAS_FN(fn_sub, regs[fp->rs1] - regs[fp->rs2])
            MBIAS_FN(fn_mul, regs[fp->rs1] * regs[fp->rs2])
          fn_divu: {
            const std::uint64_t bv = regs[fp->rs2];
            regs[fp->rd] =
                bv == 0 ? ~std::uint64_t(0) : regs[fp->rs1] / bv;
            if (++fp == fe)
                goto fn_done;
            goto *kFn[std::size_t(fp->op)];
          }
          fn_remu: {
            const std::uint64_t bv = regs[fp->rs2];
            regs[fp->rd] = bv == 0 ? regs[fp->rs1] : regs[fp->rs1] % bv;
            if (++fp == fe)
                goto fn_done;
            goto *kFn[std::size_t(fp->op)];
          }
            MBIAS_FN(fn_and, regs[fp->rs1] & regs[fp->rs2])
            MBIAS_FN(fn_or, regs[fp->rs1] | regs[fp->rs2])
            MBIAS_FN(fn_xor, regs[fp->rs1] ^ regs[fp->rs2])
            MBIAS_FN(fn_sll, regs[fp->rs1] << (regs[fp->rs2] & 63))
            MBIAS_FN(fn_srl, regs[fp->rs1] >> (regs[fp->rs2] & 63))
            MBIAS_FN(fn_sra,
                     std::uint64_t(std::int64_t(regs[fp->rs1]) >>
                                   (regs[fp->rs2] & 63)))
            MBIAS_FN(fn_slt, std::int64_t(regs[fp->rs1]) <
                                     std::int64_t(regs[fp->rs2])
                                 ? 1
                                 : 0)
            MBIAS_FN(fn_sltu, regs[fp->rs1] < regs[fp->rs2] ? 1 : 0)
            MBIAS_FN(fn_addi, regs[fp->rs1] + std::uint64_t(fp->imm))
            MBIAS_FN(fn_andi, regs[fp->rs1] & std::uint64_t(fp->imm))
            MBIAS_FN(fn_ori, regs[fp->rs1] | std::uint64_t(fp->imm))
            MBIAS_FN(fn_xori, regs[fp->rs1] ^ std::uint64_t(fp->imm))
            MBIAS_FN(fn_slli,
                     regs[fp->rs1] << (std::uint64_t(fp->imm) & 63))
            MBIAS_FN(fn_srli,
                     regs[fp->rs1] >> (std::uint64_t(fp->imm) & 63))
            MBIAS_FN(fn_srai,
                     std::uint64_t(std::int64_t(regs[fp->rs1]) >>
                                   (std::uint64_t(fp->imm) & 63)))
            MBIAS_FN(fn_slti,
                     std::int64_t(regs[fp->rs1]) < fp->imm ? 1 : 0)
            MBIAS_FN(fn_li, std::uint64_t(fp->imm))
#undef MBIAS_FN
        }
      fn_done:;

        // Exit readiness of every written register: issue cycle of
        // its last write (entry time + groups opened up to it + miss
        // penalties charged at or before it) plus its latency.
        const std::size_t wn = tb->writes.size();
        const std::size_t width = tb->rows.size();
        for (std::size_t w = 0; w < wn; ++w) {
            const TraceBlock::RegWrite &rw = tb->writes[w];
            Cycles at = tr_now0 + tb->writeGroups[w * width + tr_srow];
            for (const auto &pr : tr_pens)
                if (pr.first <= rw.pos)
                    at += pr.second;
            const Cycles lat = rw.latClass == 0 ? 1
                               : rw.latClass == 1 ? mul_lat
                                                  : div_lat;
            pipe.regReady[rw.reg] = at + lat;
        }

        idx += tb->len;
        MBIAS_DISPATCH();
    }

#undef MBIAS_DISPATCH

  run_done:
    if constexpr (Traced)
        TraceCache::global().recordRun(tr_batched, icount - tr_batched,
                                       tr_fallbacks);
    if (kRecord) {
        if (rec_nbits && rec_ok)
            ft_rec->branchBits.push_back(rec_bits); // flush partial word
        ft_rec->aborted = !rec_ok;
        ft_rec->icount = icount;
        ft_rec->halted = halted;
        ft_rec->resultA0 = regs[isa::reg::a0];
    }
    ctrs.set(Counter::Cycles, pipe.now);
    ctrs.set(Counter::Instructions, icount);
    rr.halted = halted;
    if (kReplay) {
        // The architectural outcome comes from the recording; the
        // loop above only re-derived control flow from the streams.
        // a0 gets the stack rebase when it is itself a stack address
        // (e.g. a workload returning a stack pointer).
        mbias_assert(icount == rep->icount && halted == rep->halted,
                     "replay diverged from its recording");
        rr.result = rep->resultA0 >= rp_boundary
                        ? rep->resultA0 + rp_delta
                        : rep->resultA0;
    } else {
        rr.result = regs[isa::reg::a0];
    }
    return rr;
}

} // namespace mbias::sim
