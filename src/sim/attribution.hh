#ifndef MBIAS_SIM_ATTRIBUTION_HH
#define MBIAS_SIM_ATTRIBUTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/config.hh"

#ifndef MBIAS_OBS_ENABLED
#define MBIAS_OBS_ENABLED 1
#endif

namespace mbias::sim
{

/**
 * Per-set access/conflict/eviction counters for one set-indexed
 * structure (a cache level, or a TLB bucketed by VPN).
 *
 * Occupancy is mirrored here rather than read back from the cache:
 * for a cold-started, noise-free run the mirror is exact (a miss
 * either cold-fills an empty way or evicts the LRU line), and keeping
 * it outside the uarch components guarantees attribution can never
 * perturb their state.
 */
struct SetCounters
{
    unsigned sets = 0;
    unsigned ways = 0;

    std::vector<std::uint64_t> touches;   ///< accesses per set
    std::vector<std::uint64_t> misses;    ///< line/page fills per set
    std::vector<std::uint64_t> evictions; ///< fills past capacity per set

    void configure(unsigned set_count, unsigned way_count);
    void clear();

    void touch(std::size_t set) { ++touches[set]; }
    void miss(std::size_t set)
    {
        ++misses[set];
        if (occupancy_[set] < ways)
            ++occupancy_[set];
        else
            ++evictions[set];
    }

    std::uint64_t totalTouches() const;
    std::uint64_t totalMisses() const;
    std::uint64_t totalEvictions() const;

    /** Index of the set with the most misses (lowest index wins ties). */
    std::size_t hottestSet() const;

  private:
    std::vector<std::uint32_t> occupancy_; ///< live lines per set
};

/**
 * Per-entry aliasing counters for a PC-indexed prediction table (PHT
 * or BTB set).  Records which PCs collide in each entry — the concrete
 * mechanism behind link-order predictor bias — capped at a small
 * first-seen list per entry so memory stays O(table).
 */
struct TableCounters
{
    static constexpr unsigned kPcsPerEntry = 4;

    std::size_t entries = 0;

    std::vector<std::uint64_t> updates;       ///< accesses per entry
    std::vector<std::uint64_t> aliasSwitches; ///< accesses whose PC
                                              ///< differs from the last
    std::vector<Addr> pcs; ///< entries × kPcsPerEntry first-seen PCs
                           ///< (0 = empty slot)

    void configure(std::size_t entry_count);
    void clear();

    void record(std::size_t idx, Addr pc)
    {
        ++updates[idx];
        if (lastPc_[idx] != 0 && lastPc_[idx] != pc)
            ++aliasSwitches[idx];
        lastPc_[idx] = pc;
        Addr *slot = &pcs[idx * kPcsPerEntry];
        for (unsigned i = 0; i < kPcsPerEntry; ++i) {
            if (slot[i] == pc)
                return;
            if (slot[i] == 0) {
                slot[i] = pc;
                return;
            }
        }
    }

    /** Distinct PCs recorded for @p idx (saturates at kPcsPerEntry). */
    unsigned distinctPcs(std::size_t idx) const;

    std::uint64_t totalAliasSwitches() const;

    /** Entry with the most alias switches (lowest index wins ties). */
    std::size_t hottestEntry() const;

  private:
    std::vector<Addr> lastPc_; ///< 0 = no access yet
};

/**
 * Microarchitectural attribution for one reference-interpreter run:
 * which cache sets, TLB buckets, and predictor entries the run's
 * events landed in.  This is the paper's missing microscope — two
 * runs of the same binary under different setups can be diffed
 * set-by-set to show *where* a layout change bites.
 *
 * Contract: attribution observes, never perturbs.  Machine::run()
 * only appends to these side structures; RunResult stays bitwise
 * identical with or without an Attribution attached (enforced by
 * tests/sim/attribution_test.cc).  Under -DMBIAS_OBS=OFF the
 * recording hooks compile out and every structure stays zeroed;
 * enabled() reports whether the build records.
 *
 * TLBs are fully associative in this model (no sets), so "per-TLB-set
 * pressure" is modelled as VPN buckets: bucket = vpn & (sets - 1)
 * with ways = entries / sets.  Eviction counts there are a capacity
 * approximation by design; touch/miss counts are exact.
 */
struct Attribution
{
    SetCounters icache;
    SetCounters dcache;
    SetCounters itlb;
    SetCounters dtlb;
    TableCounters pht; ///< direction-predictor table, keyed by index
    TableCounters btb; ///< BTB *sets* (way conflicts are the mechanism)

    /** Number of VPN buckets used for each TLB. */
    static constexpr unsigned kTlbBuckets = 64;

    /** Sizes every structure to @p config and zeroes all counters. */
    void configure(const MachineConfig &config);

    /** Zeroes all counters, keeping the geometry. */
    void clear();

    /** True when the build records attribution (MBIAS_OBS=ON). */
    static constexpr bool enabled() { return MBIAS_OBS_ENABLED != 0; }

    /** Short deterministic text summary (totals + hottest set/entry
     *  per structure). */
    std::string str() const;
};

} // namespace mbias::sim

#endif // MBIAS_SIM_ATTRIBUTION_HH
