#include "sim/replay.hh"

#include <cstdlib>
#include <cstring>

#include "base/hash.hh"
#include "base/logging.hh"
#include "sim/machine.hh"

namespace mbias::sim
{

bool
replayDisabledByEnv()
{
    const char *env = std::getenv("MBIAS_SIM_REPLAY");
    return env && std::strcmp(env, "0") == 0;
}

bool
replayTierUsable(const Machine &machine)
{
#if !MBIAS_SIM_REPLAY_ENABLED
    (void)machine;
    return false;
#else
    return machine.useFastPath() && machine.useReplayPath() &&
           machine.tierSupport().replay && !replayDisabledByEnv() &&
           !referenceForcedByEnv();
#endif
}

std::uint64_t
FunctionalTrace::approxBytes() const
{
    return sizeof(*this) + branchBits.capacity() * sizeof(std::uint64_t) +
           retTargets.capacity() * sizeof(std::uint32_t) +
           memAddrs.capacity() * sizeof(Addr);
}

std::size_t
ReplayCache::KeyHash::operator()(const Key &k) const
{
    Fnv1a h;
    h.u64(std::uint64_t(reinterpret_cast<std::uintptr_t>(k.program)));
    h.u64(k.gp);
    h.u64(k.heapBase);
    h.u64(k.entryIdx);
    h.u64(k.budget);
    return std::size_t(h.value());
}

ReplayCache::ReplayCache(std::size_t capacity) : capacity_(capacity)
{
    mbias_assert(capacity > 0, "replay cache capacity must be nonzero");
}

ReplayCache &
ReplayCache::global()
{
    static ReplayCache cache;
    return cache;
}

ReplayCache::Key
ReplayCache::keyOf(const toolchain::ProcessImage &image,
                   std::uint64_t budget)
{
    Key k;
    k.program = image.program.get();
    k.gp = image.gp;
    k.heapBase = image.heapBase;
    k.entryIdx = image.entryIdx;
    k.budget = budget;
    return k;
}

namespace
{

void
bump(const std::atomic<obs::Counter *> &c, std::uint64_t by = 1)
{
    if (obs::Counter *counter = c.load(std::memory_order_relaxed))
        counter->add(by);
}

} // namespace

std::shared_ptr<const FunctionalTrace>
ReplayCache::find(const toolchain::ProcessImage &image,
                  std::uint64_t budget, bool *unrecordable)
{
    if (unrecordable)
        *unrecordable = false;
    const Key key = keyOf(image, budget);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++misses_;
        bump(cMisses_);
        return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    bump(cHits_);
    if (!it->second->second.trace && unrecordable)
        *unrecordable = true;
    return it->second->second.trace;
}

void
ReplayCache::insert(const toolchain::ProcessImage &image,
                    std::uint64_t budget,
                    std::shared_ptr<const FunctionalTrace> trace)
{
    mbias_assert(!trace || trace->matches(image, budget),
                 "inserting a replay trace that mismatches its own key");
    const Key key = keyOf(image, budget);
    Entry entry;
    entry.pin = image.program;
    entry.trace = std::move(trace);
    const std::uint64_t entry_bytes =
        entry.trace ? entry.trace->approxBytes() : sizeof(Entry);

    std::lock_guard<std::mutex> lock(mutex_);
    if (map_.find(key) != map_.end())
        return; // first insert wins; racing recorders produce equal traces
    bytes_ += entry_bytes;
    lru_.emplace_front(key, std::move(entry));
    map_.emplace(key, lru_.begin());
    while (map_.size() > capacity_) {
        const Entry &victim = lru_.back().second;
        bytes_ -= victim.trace ? victim.trace->approxBytes()
                               : std::uint64_t(sizeof(Entry));
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
        bump(cEvictions_);
    }
}

void
ReplayCache::noteRecord()
{
    records_.fetch_add(1, std::memory_order_relaxed);
    bump(cRecords_);
}

void
ReplayCache::noteReplay()
{
    replays_.fetch_add(1, std::memory_order_relaxed);
    bump(cReplays_);
}

void
ReplayCache::noteFallback()
{
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    bump(cFallbacks_);
}

void
ReplayCache::attachMetrics(obs::Registry *metrics)
{
    std::lock_guard<std::mutex> lock(metricsMutex_);
    if (!metrics) {
        cHits_ = nullptr;
        cMisses_ = nullptr;
        cEvictions_ = nullptr;
        cRecords_ = nullptr;
        cReplays_ = nullptr;
        cFallbacks_ = nullptr;
        return;
    }
    cHits_ = &metrics->counter("sim.replay.hits");
    cMisses_ = &metrics->counter("sim.replay.misses");
    cEvictions_ = &metrics->counter("sim.replay.evictions");
    cRecords_ = &metrics->counter("sim.replay.records");
    cReplays_ = &metrics->counter("sim.replay.replays");
    cFallbacks_ = &metrics->counter("sim.replay.fallbacks");
}

ReplayCache::Stats
ReplayCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.records = records_.load(std::memory_order_relaxed);
    s.replays = replays_.load(std::memory_order_relaxed);
    s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
    s.bytes = bytes_;
    return s;
}

void
ReplayCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    lru_.clear();
    bytes_ = 0;
}

} // namespace mbias::sim
