#include "survey/analyzer.hh"

namespace mbias::survey
{

SurveyAnalyzer::SurveyAnalyzer(const SurveyDatabase &db) : db_(db) {}

VenueSummary
SurveyAnalyzer::summarizeRecords(const std::string &name,
                                 const std::vector<PaperRecord> &rs) const
{
    VenueSummary s;
    s.venue = name;
    s.papers = unsigned(rs.size());
    for (const auto &p : rs) {
        s.evaluatePerformance += p.evaluatesPerformance;
        s.useSpecCpu += p.usesSpecCpu;
        s.compareToBaseline += p.comparesToBaseline;
        s.reportVariability += p.reportsVariability;
        s.reportEnvironment += p.reportsEnvironment;
        s.reportLinkOrder += p.reportsLinkOrder;
        s.addressBias += p.addressesMeasurementBias;
    }
    return s;
}

std::vector<VenueSummary>
SurveyAnalyzer::summarize() const
{
    std::vector<VenueSummary> out;
    for (Venue v : allVenues())
        out.push_back(summarizeRecords(venueName(v), db_.byVenue(v)));
    out.push_back(summarizeRecords("total", db_.papers()));
    return out;
}

unsigned
SurveyAnalyzer::papersAddressingBias() const
{
    unsigned n = 0;
    for (const auto &p : db_.papers())
        n += p.addressesMeasurementBias;
    return n;
}

unsigned
SurveyAnalyzer::vulnerablePapers() const
{
    unsigned n = 0;
    for (const auto &p : db_.papers())
        if (p.evaluatesPerformance && !p.reportsEnvironment &&
            !p.reportsLinkOrder && !p.reportsVariability)
            ++n;
    return n;
}

} // namespace mbias::survey
