#include "survey/database.hh"

#include "base/logging.hh"
#include "base/random.hh"

namespace mbias::survey
{

std::string
venueName(Venue v)
{
    switch (v) {
      case Venue::ASPLOS:
        return "ASPLOS";
      case Venue::PACT:
        return "PACT";
      case Venue::PLDI:
        return "PLDI";
      case Venue::CGO:
        return "CGO";
    }
    mbias_panic("bad venue");
}

const std::vector<Venue> &
allVenues()
{
    static const std::vector<Venue> venues = {Venue::ASPLOS, Venue::PACT,
                                              Venue::PLDI, Venue::CGO};
    return venues;
}

namespace
{

/** Paper counts per venue; 31+33+34+35 = 133, the survey's total. */
constexpr struct
{
    Venue venue;
    unsigned count;
} venue_counts[] = {
    {Venue::ASPLOS, 31},
    {Venue::PACT, 33},
    {Venue::PLDI, 34},
    {Venue::CGO, 35},
};

std::vector<PaperRecord>
generate()
{
    // Attribute rates chosen to be plausible for 2008 systems venues;
    // the hard constraints from the published survey are: 133 papers
    // total, and zero papers reporting env size, link order, or
    // otherwise addressing measurement bias.
    Rng rng(0x133133133ULL);
    std::vector<PaperRecord> papers;
    std::uint32_t id = 1;
    for (const auto &vc : venue_counts) {
        for (unsigned i = 0; i < vc.count; ++i) {
            PaperRecord p;
            p.id = id++;
            p.venue = vc.venue;
            p.year = 2008;
            p.evaluatesPerformance = rng.nextBounded(100) < 92;
            if (p.evaluatesPerformance) {
                const bool compiler_venue = vc.venue == Venue::PLDI ||
                                            vc.venue == Venue::CGO;
                p.usesSpecCpu =
                    rng.nextBounded(100) < (compiler_venue ? 65 : 45);
                p.comparesToBaseline = rng.nextBounded(100) < 80;
                p.reportsVariability = rng.nextBounded(100) < 16;
            }
            p.reportsEnvironment = false;
            p.reportsLinkOrder = false;
            p.addressesMeasurementBias = false;
            papers.push_back(p);
        }
    }
    return papers;
}

} // namespace

const SurveyDatabase &
SurveyDatabase::bundled()
{
    static const SurveyDatabase db = [] {
        SurveyDatabase d;
        d.papers_ = generate();
        return d;
    }();
    return db;
}

std::vector<PaperRecord>
SurveyDatabase::byVenue(Venue v) const
{
    std::vector<PaperRecord> out;
    for (const auto &p : papers_)
        if (p.venue == v)
            out.push_back(p);
    return out;
}

} // namespace mbias::survey
