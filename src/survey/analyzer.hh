#ifndef MBIAS_SURVEY_ANALYZER_HH
#define MBIAS_SURVEY_ANALYZER_HH

#include <string>
#include <vector>

#include "survey/database.hh"

namespace mbias::survey
{

/** Aggregates for one venue (or for the whole survey). */
struct VenueSummary
{
    std::string venue;
    unsigned papers = 0;
    unsigned evaluatePerformance = 0;
    unsigned useSpecCpu = 0;
    unsigned compareToBaseline = 0;
    unsigned reportVariability = 0;
    unsigned reportEnvironment = 0;
    unsigned reportLinkOrder = 0;
    unsigned addressBias = 0;
};

/** Computes the paper's literature-survey summary table. */
class SurveyAnalyzer
{
  public:
    explicit SurveyAnalyzer(const SurveyDatabase &db);

    /** Per-venue rows plus a final "total" row. */
    std::vector<VenueSummary> summarize() const;

    /** The headline number: papers addressing measurement bias. */
    unsigned papersAddressingBias() const;

    /**
     * Papers *vulnerable* to measurement bias: they evaluate
     * performance but report neither setup factor nor variability.
     */
    unsigned vulnerablePapers() const;

  private:
    VenueSummary summarizeRecords(const std::string &name,
                                  const std::vector<PaperRecord> &rs) const;

    const SurveyDatabase &db_;
};

} // namespace mbias::survey

#endif // MBIAS_SURVEY_ANALYZER_HH
