#ifndef MBIAS_SURVEY_DATABASE_HH
#define MBIAS_SURVEY_DATABASE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mbias::survey
{

/** The four venues the paper surveyed. */
enum class Venue
{
    ASPLOS,
    PACT,
    PLDI,
    CGO,
};

/** Readable venue name. */
std::string venueName(Venue v);

/** All venues. */
const std::vector<Venue> &allVenues();

/**
 * One surveyed paper's methodology attributes, in the paper's terms.
 *
 * The aggregate totals (133 papers over ASPLOS/PACT/PLDI/CGO, none
 * addressing measurement bias) are the published survey result; the
 * per-paper rows are a synthetic elaboration consistent with those
 * aggregates, generated deterministically (see DESIGN.md on
 * substitutions).
 */
struct PaperRecord
{
    std::uint32_t id = 0;
    Venue venue = Venue::ASPLOS;
    int year = 2008;

    bool evaluatesPerformance = false; ///< reports speedup-style claims
    bool usesSpecCpu = false;          ///< SPEC CPU workloads
    bool comparesToBaseline = false;   ///< quantitative baseline compare
    bool reportsVariability = false;   ///< error bars / CI / repetitions
    bool reportsEnvironment = false;   ///< documents UNIX env contents
    bool reportsLinkOrder = false;     ///< documents link order
    bool addressesMeasurementBias = false; ///< acknowledges/controls bias
};

/** The bundled 133-paper survey. */
class SurveyDatabase
{
  public:
    /** Loads the bundled dataset. */
    static const SurveyDatabase &bundled();

    const std::vector<PaperRecord> &papers() const { return papers_; }

    /** Papers from one venue. */
    std::vector<PaperRecord> byVenue(Venue v) const;

    std::size_t size() const { return papers_.size(); }

  private:
    std::vector<PaperRecord> papers_;
};

} // namespace mbias::survey

#endif // MBIAS_SURVEY_DATABASE_HH
