#include "core/manifest.hh"

#include <sstream>

namespace mbias::core
{

std::string
SetupManifest::describeMachine(const sim::MachineConfig &m)
{
    std::ostringstream os;
    os << "machine " << m.name << ":\n";
    os << "  front end   : " << m.fetchWidth << "-wide, "
       << m.fetchBlockBytes << "B fetch blocks, mispredict "
       << m.branchMispredictPenalty << "c\n";
    os << "  predictor   : "
       << (m.predictor == sim::PredictorKind::Gshare ? "gshare" : "bimodal")
       << " 2^" << m.predictorTableBits << " entries, "
       << m.predictorHistoryBits << "b history; BTB " << m.btbSets << "x"
       << m.btbWays << "\n";
    os << "  L1I/L1D     : " << m.icache.capacityBytes() / 1024 << "K/"
       << m.dcache.capacityBytes() / 1024 << "K, " << m.dcache.lineBytes
       << "B lines, miss " << m.icache.missPenalty << "/"
       << m.dcache.missPenalty << "c\n";
    os << "  L2          : " << m.l2.capacityBytes() / 1024 << "K, miss "
       << m.l2.missPenalty << "c\n";
    os << "  TLBs        : " << m.itlb.entries << "i/" << m.dtlb.entries
       << "d entries, miss " << m.itlb.missPenalty << "/"
       << m.dtlb.missPenalty << "c\n";
    os << "  hazards     : line split " << m.lineSplitPenalty
       << "c, 4K alias " << m.aliasPenalty << "c (buffer "
       << m.storeBufferEntries << "), OoO window " << m.oooWindowCycles
       << "c\n";
    os << "  prefetcher  : "
       << (m.enableNextLinePrefetch ? "next-line" : "none") << "\n";
    return os.str();
}

std::string
SetupManifest::describe(const ExperimentSpec &spec,
                        const ExperimentSetup &setup)
{
    std::ostringstream os;
    os << "=== experimental setup manifest ===\n";
    os << "workload      : " << spec.workload << " (scale "
       << spec.workloadConfig.scale << ", input seed "
       << spec.workloadConfig.seed << ")\n";
    os << "baseline      : " << spec.baseline.str() << "\n";
    os << "treatment     : " << spec.treatment.str() << "\n";
    os << "metric        : " << metricName(spec.metric) << "\n";
    os << "env size      : " << setup.envBytes
       << " bytes   <- the factor nobody reports\n";
    os << "link order    : " << setup.linkOrder.str()
       << "   <- the other factor nobody reports\n";
    os << describeMachine(spec.machine);
    if (spec.treatmentMachine)
        os << describeMachine(*spec.treatmentMachine);
    return os.str();
}

} // namespace mbias::core
