#ifndef MBIAS_CORE_RUNNER_HH
#define MBIAS_CORE_RUNNER_HH

#include <map>
#include <thread>
#include <vector>

#include "core/experiment.hh"
#include "core/setup.hh"
#include "obs/metrics.hh"
#include "sim/machine.hh"
#include "stats/sample.hh"

namespace mbias::core
{

/** The measurements of one setup: baseline, treatment, and the ratio. */
struct RunOutcome
{
    ExperimentSetup setup;
    sim::RunResult baseline;
    sim::RunResult treatment;

    /**
     * Speedup of the treatment over the baseline on the spec's metric
     * (ratio of baseline to treatment, so > 1 means treatment wins).
     */
    double speedup = 0.0;
};

/**
 * Executes an ExperimentSpec under chosen setups: builds the workload,
 * compiles baseline and treatment once each (modules are cached), and
 * links/loads/runs per setup.
 *
 * Thread-safety contract: a runner is stateful (the lazily populated
 * compile cache) and must only ever be used from ONE thread — give
 * each worker of a parallel campaign its own runner (compilation is
 * deterministic, so per-worker caches cannot diverge).  The contract
 * is enforced: the runner binds to the first thread that runs with it
 * and panics if a second thread shows up.  Constructing on one thread
 * and handing off to a single worker is fine; binding happens at
 * first use, not construction.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(ExperimentSpec spec);

    const ExperimentSpec &spec() const { return spec_; }

    /** Runs baseline and treatment in one setup. */
    RunOutcome run(const ExperimentSetup &setup);

    /** Runs all setups. */
    std::vector<RunOutcome> runAll(const std::vector<ExperimentSetup> &s);

    /** Runs only one side (used by causal analysis).
     *  @p treatment_side selects the treatment machine for hardware
     *  studies. */
    sim::RunResult runSide(const toolchain::ToolchainSpec &tc,
                           const ExperimentSetup &setup,
                           bool treatment_side = false);

    /**
     * Repeats one side @p reps times in one setup under seeded
     * OS-interrupt noise (seeds base, base+1, ...), returning the
     * metric sample — the conventional "repeat the run k times"
     * methodology the paper contrasts with setup randomization.
     */
    stats::Sample repeatedMetric(const toolchain::ToolchainSpec &tc,
                                 const ExperimentSetup &setup,
                                 unsigned reps,
                                 std::uint64_t noise_seed_base);

    /**
     * The Stabilizer-style remedy: runs one side @p reps times in one
     * setup with a *different stack ASLR layout per run* (seeds base,
     * base+1, ...).  Layout bias becomes visible variance; the mean of
     * the sample estimates the layout-marginalized metric.
     */
    stats::Sample aslrRandomizedMetric(const toolchain::ToolchainSpec &tc,
                                       const ExperimentSetup &setup,
                                       unsigned reps,
                                       std::uint64_t aslr_seed_base);

    /** Extracts the spec's metric from a run result. */
    double metricOf(const sim::RunResult &rr) const;

    /**
     * Loader override hook: when set, forces the initial stack pointer
     * alignment (the paper-style "align the stack" causal
     * intervention).  0 = no override.
     */
    void setSpAlignOverride(std::uint64_t align) { spAlign_ = align; }

    /**
     * Attaches a metrics registry: the runner then counts
     * `runner.compiles` and records `runner.run_us` per simulated
     * side.  @p metrics must outlive the runner; nullptr detaches.
     * (Span tracing is independent of this — spans go to the global
     * Tracer whenever a session is active.)
     */
    void setMetrics(obs::Registry *metrics);

  private:
    const std::vector<isa::Module> &
    compiled(const toolchain::ToolchainSpec &tc);

    /** Enforces the one-thread contract (see class comment). */
    void bindThread();

    ExperimentSpec spec_;
    std::uint64_t spAlign_ = 0;
    obs::Counter *compileCounter_ = nullptr;
    obs::Histogram *runHistogram_ = nullptr;
    std::map<std::pair<int, int>, std::vector<isa::Module>> cache_;
    std::thread::id owner_; ///< bound on first use; empty = unbound
};

} // namespace mbias::core

#endif // MBIAS_CORE_RUNNER_HH
