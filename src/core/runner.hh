#ifndef MBIAS_CORE_RUNNER_HH
#define MBIAS_CORE_RUNNER_HH

#include <map>
#include <vector>

#include "core/experiment.hh"
#include "core/setup.hh"
#include "obs/metrics.hh"
#include "sim/machine.hh"
#include "stats/sample.hh"
#include "toolchain/artifacts.hh"

namespace mbias::core
{

/** The measurements of one setup: baseline, treatment, and the ratio. */
struct RunOutcome
{
    ExperimentSetup setup;
    sim::RunResult baseline;
    sim::RunResult treatment;

    /**
     * Speedup of the treatment over the baseline on the spec's metric
     * (ratio of baseline to treatment, so > 1 means treatment wins).
     */
    double speedup = 0.0;

    /**
     * Per-repetition metric values of each side, in rep order.  Only
     * the sample-collecting campaign repetition plans (NoiseRepeated,
     * NoisePaired) fill these; paired single runs leave them empty.
     */
    std::vector<double> repBaseline;
    std::vector<double> repTreatment;
};

/**
 * Extracts @p metric from a run result — the spec-independent core of
 * ExperimentRunner::metricOf, usable by render/aggregate code that has
 * outcomes but no runner (e.g. pipeline figures reading campaign
 * results).
 */
double metricValue(Metric metric, const sim::RunResult &rr);

/**
 * Executes an ExperimentSpec under chosen setups: materializes each
 * setup (compile, link in the setup's order, load with the setup's
 * environment block) through the shared toolchain ArtifactCache, then
 * runs baseline and treatment on the simulator.
 *
 * By default runners pull artifacts from ArtifactCache::global(), so
 * every worker of a parallel campaign shares one compile per
 * (workload, toolchain) and one link per (modules, order) no matter
 * how tasks are scheduled — the toolchain is deterministic and cached
 * artifacts are immutable, so results are identical to recomputing.
 * setArtifactCache(nullptr) opts out: the runner then keeps only a
 * private per-toolchain compile memo and re-links/re-loads per task
 * (the pre-cache behavior, kept as the benchmark baseline).  In that
 * mode the private memo is unsynchronized, so keep the runner on one
 * thread — which the campaign engine does anyway (runner per worker).
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(ExperimentSpec spec);

    const ExperimentSpec &spec() const { return spec_; }

    /** Runs baseline and treatment in one setup. */
    RunOutcome run(const ExperimentSetup &setup);

    /** Runs all setups. */
    std::vector<RunOutcome> runAll(const std::vector<ExperimentSetup> &s);

    /** Runs only one side (used by causal analysis).
     *  @p treatment_side selects the treatment machine for hardware
     *  studies. */
    sim::RunResult runSide(const toolchain::ToolchainSpec &tc,
                           const ExperimentSetup &setup,
                           bool treatment_side = false);

    /**
     * runSide() with per-function profiling and optional per-set
     * attribution (both force the reference interpreter).  The
     * returned RunResult is bitwise identical to runSide()'s — the
     * sinks observe, never perturb.
     */
    sim::RunResult runProfiled(const toolchain::ToolchainSpec &tc,
                               const ExperimentSetup &setup,
                               sim::Profile *profile,
                               sim::Attribution *attribution = nullptr,
                               bool treatment_side = false);

    /**
     * Repeats one side @p reps times in one setup under seeded
     * run-to-run noise (seeds base, base+1, ...), returning the
     * metric sample — the conventional "repeat the run k times"
     * methodology the paper contrasts with setup randomization.
     * Each repetition runs under @p noise_template with only the seed
     * overwritten; the default template (OS-interrupt noise, default
     * magnitudes) is what this method always built, and figures sweep
     * other factors (e.g. DVFS frequency steps) by passing their own.
     */
    stats::Sample repeatedMetric(
        const toolchain::ToolchainSpec &tc, const ExperimentSetup &setup,
        unsigned reps, std::uint64_t noise_seed_base,
        const sim::NoiseModel &noise_template = sim::NoiseModel::withSeed(0));

    /**
     * The Stabilizer-style remedy: runs one side @p reps times in one
     * setup with a *different stack ASLR layout per run* (seeds base,
     * base+1, ...).  Layout bias becomes visible variance; the mean of
     * the sample estimates the layout-marginalized metric.
     */
    stats::Sample aslrRandomizedMetric(const toolchain::ToolchainSpec &tc,
                                       const ExperimentSetup &setup,
                                       unsigned reps,
                                       std::uint64_t aslr_seed_base);

    /** Extracts the spec's metric from a run result. */
    double metricOf(const sim::RunResult &rr) const;

    /**
     * Loader override hook: when set, forces the initial stack pointer
     * alignment (the paper-style "align the stack" causal
     * intervention).  0 = no override.
     */
    void setSpAlignOverride(std::uint64_t align) { spAlign_ = align; }

    /**
     * Selects the artifact cache the runner materializes setups
     * through.  Defaults to ArtifactCache::global(); nullptr disables
     * cross-stage sharing (see the class comment).  @p cache must
     * outlive the runner.
     */
    void setArtifactCache(toolchain::ArtifactCache *cache)
    {
        artifacts_ = cache;
    }

    /**
     * Attaches a metrics registry: the runner then counts
     * `runner.compiles` and records `runner.run_us` per simulated
     * side.  @p metrics must outlive the runner; nullptr detaches.
     * (Span tracing is independent of this — spans go to the global
     * Tracer whenever a session is active.)
     */
    void setMetrics(obs::Registry *metrics);

  private:
    /** Compiled modules of one side: shared cache or private memo. */
    toolchain::ModulesPtr
    compiledModules(const toolchain::ToolchainSpec &tc);

    /** The program of (@p tc, @p order): cached link or fresh link. */
    toolchain::ProgramPtr
    linkedProgram(const toolchain::ToolchainSpec &tc,
                  const toolchain::LinkOrder &order);

    /** The setup's LoaderConfig (envBytes + sp-align override). */
    toolchain::LoaderConfig
    loaderConfigFor(const ExperimentSetup &setup) const;

    /**
     * Materializes one setup end to end — compile on miss, link in
     * the setup's order, load with the setup's environment block —
     * one definition for every run flavor above.
     */
    toolchain::ProcessImage
    materialize(const toolchain::ToolchainSpec &tc,
                const ExperimentSetup &setup);

    ExperimentSpec spec_;
    std::uint64_t spAlign_ = 0;
    obs::Counter *compileCounter_ = nullptr;
    obs::Histogram *runHistogram_ = nullptr;
    toolchain::ArtifactCache *artifacts_;

    /** Per-toolchain compile memo for the cache-off mode only. */
    std::map<std::pair<int, int>, toolchain::ModulesPtr> localModules_;
};

} // namespace mbias::core

#endif // MBIAS_CORE_RUNNER_HH
