#ifndef MBIAS_CORE_EXPLAIN_HH
#define MBIAS_CORE_EXPLAIN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/setup.hh"
#include "sim/attribution.hh"
#include "sim/machine.hh"
#include "sim/profile.hh"

namespace mbias::core
{

/**
 * The setup-diff engine behind `mbias explain`: run the same workload
 * (baseline toolchain) under two setups on the reference interpreter
 * with profiling + attribution on, and rank what explains the cycle
 * delta — which functions moved, and which microarchitectural
 * mechanism (cache-set conflicts, predictor/BTB aliasing,
 * stack-alignment line splits, store-load aliasing, TLB pressure)
 * carries it.  Everything here is a pure function of two deterministic
 * runs, so every rendering (text, heatmaps, JSON, trace counter
 * tracks) is byte-stable.
 */

/** One event class's contribution to the A→B cycle delta. */
struct MechanismContribution
{
    std::string key;  ///< stable slug, e.g. "dcache_set_conflict"
    std::string name; ///< e.g. "dcache-set conflict"
    std::int64_t eventDelta = 0;    ///< event count, B - A
    std::int64_t weightedCycles = 0; ///< eventDelta x penalty cycles
    double share = 0.0; ///< |weightedCycles| / sum of all |weighted|
    std::string evidence; ///< hottest set/entry/function, one line
};

/** One function's movement between the two setups (ProfileDiff row). */
struct FunctionDelta
{
    std::string name;
    std::uint64_t cyclesA = 0;
    std::uint64_t cyclesB = 0;
    std::int64_t delta = 0; ///< cyclesB - cyclesA

    std::int64_t icacheMisses = 0;
    std::int64_t dcacheMisses = 0;
    std::int64_t branchMispredicts = 0;
    std::int64_t btbMisses = 0;
    std::int64_t lineSplits = 0;
    std::int64_t aliasStalls = 0;
    std::int64_t stallCycles = 0;
    std::int64_t fetchGroups = 0;
};

/** The full A-vs-B attribution diff. */
struct ExplainReport
{
    /** Bumped when the JSON shape changes. */
    static constexpr int kSchemaVersion = 1;

    std::string workload;
    std::string toolchain;   ///< baseline side, e.g. "gcc-O2"
    std::string machineName; ///< e.g. "core2like"
    ExperimentSetup setupA;
    ExperimentSetup setupB;

    sim::RunResult resultA;
    sim::RunResult resultB;
    sim::Profile profileA;
    sim::Profile profileB;
    sim::Attribution attrA;
    sim::Attribution attrB;

    /** Functions ranked by |cycle delta|, largest first. */
    std::vector<FunctionDelta> functions;

    /** Mechanisms ranked by |weightedCycles|, largest first. */
    std::vector<MechanismContribution> mechanisms;

    /** The top-ranked mechanism's name ("none" when nothing moved). */
    std::string dominantMechanism() const;

    std::int64_t cycleDelta() const
    {
        return std::int64_t(resultB.cycles()) -
               std::int64_t(resultA.cycles());
    }

    /** Deterministic report: header, mechanism ranking, function
     *  diff table (top @p top_functions), and attribution evidence. */
    std::string str(unsigned top_functions = 8) const;

    /** Per-set delta heatmaps (i$/d$/TLB buckets/BTB sets) plus the
     *  top aliased PHT entries, as deterministic ASCII. */
    std::string heatmaps() const;

    /** Schema-versioned one-line JSON (embeddable in campaign
     *  stores next to provenance). */
    std::string toJson() const;

    /**
     * Records per-set counter tracks ("ph":"C" events; ts = set
     * index, args = {"a","b","delta"}) into the global Tracer so the
     * diff loads in Perfetto alongside an existing --trace session.
     * No-op when no session is active.  Returns events recorded.
     */
    std::size_t emitCounterTracks() const;
};

/**
 * Parses a setup spec string: comma-separated `env=BYTES` and
 * `link=given|alpha|seed:N` (e.g. "env=960,link=seed:17").  Returns
 * false and fills @p error on malformed input.
 */
bool parseSetupSpec(const std::string &text, ExperimentSetup &out,
                    std::string &error);

/**
 * Runs the diff: two profiled + attributed reference runs of
 * @p spec's baseline toolchain (via ExperimentRunner, so artifacts
 * come from the shared cache) and the full ranking.
 */
ExplainReport explainSetupPair(const ExperimentSpec &spec,
                               const ExperimentSetup &a,
                               const ExperimentSetup &b);

/**
 * Compact mechanism-evidence block for a causal report: dominant
 * mechanism plus the top @p top contributions with evidence lines.
 * Used by CausalAnalyzer to ship mechanism evidence with a localized
 * factor.
 */
std::string mechanismEvidence(const ExplainReport &report,
                              unsigned top = 3);

} // namespace mbias::core

#endif // MBIAS_CORE_EXPLAIN_HH
