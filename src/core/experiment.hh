#ifndef MBIAS_CORE_EXPERIMENT_HH
#define MBIAS_CORE_EXPERIMENT_HH

#include <optional>
#include <string>

#include "sim/config.hh"
#include "toolchain/compiler.hh"
#include "workloads/workload.hh"

namespace mbias::core
{

/** Which measurement the analysis is about. */
enum class Metric
{
    Cycles,
    Cpi,
    Instructions,
};

/** Readable name of a metric. */
std::string metricName(Metric m);

/**
 * The question a researcher is asking: "is the treatment toolchain
 * better than the baseline toolchain for this workload on this
 * machine?" — e.g. gcc -O3 vs gcc -O2, the paper's running example.
 *
 * Deliberately *not* part of the spec: environment size and link
 * order.  Those are the "innocuous" setup factors (ExperimentSetup)
 * whose influence this library exists to measure.
 */
struct ExperimentSpec
{
    std::string workload = "perl";
    workloads::WorkloadConfig workloadConfig;
    sim::MachineConfig machine = sim::MachineConfig::core2Like();
    toolchain::ToolchainSpec baseline{toolchain::CompilerVendor::GccLike,
                                      toolchain::OptLevel::O2};
    toolchain::ToolchainSpec treatment{toolchain::CompilerVendor::GccLike,
                                       toolchain::OptLevel::O3};

    /**
     * For *hardware* studies: when set, the treatment side runs on
     * this machine (with the baseline toolchain unless the toolchains
     * differ too).  Unset = software study on a single machine.
     */
    std::optional<sim::MachineConfig> treatmentMachine;

    Metric metric = Metric::Cycles;

    /** @name Fluent setters @{ */
    ExperimentSpec &withWorkload(std::string name);
    ExperimentSpec &withMachine(sim::MachineConfig config);
    ExperimentSpec &withBaseline(toolchain::ToolchainSpec spec);
    ExperimentSpec &withTreatment(toolchain::ToolchainSpec spec);
    /** Makes this a hardware study: baseline machine vs @p config. */
    ExperimentSpec &withTreatmentMachine(sim::MachineConfig config);
    ExperimentSpec &withScale(unsigned scale);
    /** @} */

    /** One-line description, e.g. "perl: gcc-O2 vs gcc-O3 on core2like". */
    std::string str() const;
};

} // namespace mbias::core

#endif // MBIAS_CORE_EXPERIMENT_HH
