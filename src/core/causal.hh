#ifndef MBIAS_CORE_CAUSAL_HH
#define MBIAS_CORE_CAUSAL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "sim/counters.hh"
#include "stats/anova.hh"

namespace mbias::core
{

/** How strongly one hardware event tracks the outcome across setups. */
struct CounterCorrelation
{
    sim::Counter counter = sim::Counter::Cycles;
    double spearman = 0.0; ///< rank correlation with the metric
    double pearson = 0.0;  ///< linear correlation with the metric
};

/** Result of one causal intervention. */
struct InterventionResult
{
    std::string name;          ///< e.g. "force 64-byte stack alignment"
    double spreadBefore = 0.0; ///< metric max-min across setups, before
    double spreadAfter = 0.0;  ///< ... with the intervention applied
    /** Fraction of the setup-induced spread the intervention removed. */
    double reduction() const
    {
        return spreadBefore > 0.0 ? 1.0 - spreadAfter / spreadBefore : 0.0;
    }
    /** The paper's criterion: the cause is confirmed when removing the
     *  suspected mechanism removes (most of) the variation. */
    bool confirmed(double fraction = 0.5) const
    {
        return reduction() >= fraction;
    }
};

/** Output of the causal analysis. */
struct CausalReport
{
    std::string specDescription;

    /** Counters ranked by |rank correlation| with the metric. */
    std::vector<CounterCorrelation> rankedCauses;

    /** One-way ANOVA of the setup factor's effect on the metric. */
    stats::AnovaResult factorEffect;

    /** Interventions that were tried. */
    std::vector<InterventionResult> interventions;

    /**
     * Optional mechanism evidence from the setup-diff engine: the
     * extreme setups of the sweep diffed with per-set attribution
     * (see core/explain.hh).  Filled only when the analyzer ran
     * withMechanismEvidence(); deliberately *not* part of str() so
     * pinned causal transcripts stay byte-stable.
     */
    std::string mechanismEvidence;

    std::string str() const;
};

/**
 * The paper's second remedy: *causal analysis*.  Step 1 correlates
 * hardware-counter readings with the outcome across setups to nominate
 * candidate mechanisms; step 2 intervenes on a suspected mechanism
 * (e.g. forcing stack alignment, or disabling the machine's
 * line-split penalty) and checks whether the setup-induced variation
 * disappears.
 */
class CausalAnalyzer
{
  public:
    /**
     * Executes one baseline-side sweep: run @p spec's baseline
     * toolchain across @p setups (with the loader's stack alignment
     * forced to @p sp_align when nonzero) and return the full
     * RunResults in setup order.  Interventions pass a *modified*
     * spec (ablated machine); implementations must honor it.
     */
    using SweepFn = std::function<std::vector<sim::RunResult>(
        const ExperimentSpec &spec,
        const std::vector<ExperimentSetup> &setups,
        std::uint64_t sp_align)>;

    CausalAnalyzer() = default;

    /**
     * Replaces the sweep executor.  The default runs a private serial
     * ExperimentRunner; the pipeline layer installs a campaign-backed
     * sweep so causal figures gain --jobs and caching.  Any conforming
     * executor yields bitwise-identical reports: the analysis consumes
     * only the returned RunResults, in setup order.
     */
    CausalAnalyzer &withSweep(SweepFn sweep);

    /**
     * Also runs the setup-diff engine on the sweep's extreme setups
     * (min vs max metric) and fills CausalReport::mechanismEvidence,
     * so the localized factor ships with the per-set/per-entry
     * mechanism behind it.  Costs two extra profiled reference runs.
     */
    CausalAnalyzer &withMechanismEvidence(bool on = true);

    /**
     * Runs the spec's *baseline* toolchain across @p setups, ranks
     * counter correlations, and applies the standard interventions:
     * stack-alignment forcing plus per-mechanism machine ablations for
     * the top-ranked counters.
     */
    CausalReport analyze(const ExperimentSpec &spec,
                         const std::vector<ExperimentSetup> &setups) const;

  private:
    std::vector<sim::RunResult>
    runSweep(const ExperimentSpec &spec,
             const std::vector<ExperimentSetup> &setups,
             std::uint64_t sp_align) const;

    InterventionResult
    tryIntervention(const ExperimentSpec &spec,
                    const std::vector<ExperimentSetup> &setups,
                    const std::string &name, std::uint64_t sp_align,
                    sim::MachineConfig machine, double spread_before) const;

    SweepFn sweep_; ///< empty = the default serial runner
    bool wantMechanismEvidence_ = false;
};

} // namespace mbias::core

#endif // MBIAS_CORE_CAUSAL_HH
