#ifndef MBIAS_CORE_MANIFEST_HH
#define MBIAS_CORE_MANIFEST_HH

#include <string>

#include "core/experiment.hh"
#include "core/setup.hh"

namespace mbias::core
{

/**
 * The experimental-setup manifest: everything another researcher needs
 * to reproduce a measurement *exactly*, including the "innocuous"
 * factors the paper's 133-paper survey found nobody reports.
 *
 * The paper's minimal ask of authors is precisely this: if you cannot
 * randomize the setup, at least *document* it so readers can judge
 * (and replicate) the bias.  `ExperimentRunner`-based harnesses can
 * emit one manifest per reported number.
 */
class SetupManifest
{
  public:
    /** Renders the full manifest for one (spec, setup) measurement. */
    static std::string describe(const ExperimentSpec &spec,
                                const ExperimentSetup &setup);

    /** Renders just the machine configuration section. */
    static std::string describeMachine(const sim::MachineConfig &m);
};

} // namespace mbias::core

#endif // MBIAS_CORE_MANIFEST_HH
