#include "core/experiment.hh"

#include "base/logging.hh"

namespace mbias::core
{

std::string
metricName(Metric m)
{
    switch (m) {
      case Metric::Cycles:
        return "cycles";
      case Metric::Cpi:
        return "cpi";
      case Metric::Instructions:
        return "instructions";
    }
    mbias_panic("bad metric");
}

ExperimentSpec &
ExperimentSpec::withWorkload(std::string name)
{
    workload = std::move(name);
    return *this;
}

ExperimentSpec &
ExperimentSpec::withMachine(sim::MachineConfig config)
{
    machine = std::move(config);
    return *this;
}

ExperimentSpec &
ExperimentSpec::withBaseline(toolchain::ToolchainSpec spec)
{
    baseline = spec;
    return *this;
}

ExperimentSpec &
ExperimentSpec::withTreatment(toolchain::ToolchainSpec spec)
{
    treatment = spec;
    return *this;
}

ExperimentSpec &
ExperimentSpec::withTreatmentMachine(sim::MachineConfig config)
{
    treatmentMachine = std::move(config);
    return *this;
}

ExperimentSpec &
ExperimentSpec::withScale(unsigned scale)
{
    workloadConfig.scale = scale;
    return *this;
}

std::string
ExperimentSpec::str() const
{
    if (treatmentMachine && baseline == treatment)
        return workload + " (" + baseline.str() + "): " + machine.name +
               " vs " + treatmentMachine->name;
    std::string s = workload + ": " + baseline.str() + " vs " +
                    treatment.str() + " on " + machine.name;
    if (treatmentMachine)
        s += " vs " + treatmentMachine->name;
    return s;
}

} // namespace mbias::core
