#include "core/bias.hh"

#include <cmath>
#include <sstream>

#include "base/logging.hh"
#include "stats/engine.hh"

namespace mbias::core
{

std::string
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::TreatmentHelps:
        return "treatment helps";
      case Verdict::TreatmentHurts:
        return "treatment hurts";
      case Verdict::Inconclusive:
        return "inconclusive";
    }
    mbias_panic("bad verdict");
}

std::string
BiasReport::str() const
{
    std::ostringstream os;
    os << specDescription << "\n";
    os << "  setups measured : " << outcomes.size() << "\n";
    os << "  speedup         : " << speedupCI.str() << " (CI over setups)\n";
    os << "  speedup range   : [" << speedups.min() << ", "
       << speedups.max() << "]\n";
    os << "  bias magnitude  : " << biasMagnitude << " vs effect size "
       << effectSize << (biased() ? "  ** BIASED **" : "") << "\n";
    os << "  conclusion flips: " << conclusionFlips << "/"
       << outcomes.size() << "\n";
    os << "  verdict         : " << verdictName(verdict) << "\n";
    os << "  worst setup     : " << minSetup.str() << " -> "
       << speedups.min() << "\n";
    os << "  best setup      : " << maxSetup.str() << " -> "
       << speedups.max() << "\n";
    return os.str();
}

BiasAnalyzer::BiasAnalyzer(double threshold, double confidence)
    : threshold_(threshold), confidence_(confidence)
{
    mbias_assert(threshold >= 0.0, "negative threshold");
    mbias_assert(confidence > 0.0 && confidence < 1.0, "bad confidence");
}

BiasAnalyzer &
BiasAnalyzer::withBootstrap(int resamples, std::uint64_t seed,
                            unsigned jobs)
{
    mbias_assert(resamples >= 10, "too few bootstrap resamples");
    bootstrapResamples_ = resamples;
    bootstrapSeed_ = seed;
    jobs_ = jobs;
    return *this;
}

BiasReport
BiasAnalyzer::analyze(const ExperimentSpec &spec,
                      const std::vector<ExperimentSetup> &setups) const
{
    mbias_assert(setups.size() >= 2, "bias analysis needs >= 2 setups");
    ExperimentRunner runner(spec);
    return aggregate(spec, runner.runAll(setups));
}

BiasReport
BiasAnalyzer::aggregate(const ExperimentSpec &spec,
                        std::vector<RunOutcome> outcomes) const
{
    mbias_assert(outcomes.size() >= 2, "bias analysis needs >= 2 outcomes");

    BiasReport r;
    r.specDescription = spec.str();
    r.outcomes = std::move(outcomes);

    for (const auto &o : r.outcomes)
        r.speedups.add(o.speedup);
    if (bootstrapResamples_ > 0) {
        stats::EngineOptions eo;
        eo.jobs = jobs_;
        r.speedupCI = stats::Engine(eo).bootstrapInterval(
            r.speedups.values(), bootstrapSeed_, bootstrapResamples_,
            confidence_);
    } else {
        r.speedupCI = stats::tInterval(r.speedups, confidence_);
    }
    r.biasMagnitude = r.speedups.range();
    r.effectSize = std::fabs(r.speedups.mean() - 1.0);

    for (const auto &o : r.outcomes) {
        if (o.speedup == r.speedups.min())
            r.minSetup = o.setup;
        if (o.speedup == r.speedups.max())
            r.maxSetup = o.setup;
    }

    const double mean = r.speedups.mean();
    for (const auto &o : r.outcomes) {
        if ((mean > 1.0 && o.speedup < 1.0) ||
            (mean < 1.0 && o.speedup > 1.0))
            ++r.conclusionFlips;
    }

    if (r.speedupCI.entirelyAbove(1.0 + threshold_))
        r.verdict = Verdict::TreatmentHelps;
    else if (r.speedupCI.entirelyBelow(1.0 - threshold_))
        r.verdict = Verdict::TreatmentHurts;
    else
        r.verdict = Verdict::Inconclusive;

    return r;
}

BiasReport
BiasAnalyzer::analyze(const ExperimentSpec &spec,
                      SetupRandomizer &randomizer, unsigned n) const
{
    return analyze(spec, randomizer.sample(n));
}

} // namespace mbias::core
