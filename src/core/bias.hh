#ifndef MBIAS_CORE_BIAS_HH
#define MBIAS_CORE_BIAS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "stats/ci.hh"
#include "stats/sample.hh"

namespace mbias::core
{

/** The robust answer to "is the treatment beneficial?". */
enum class Verdict
{
    TreatmentHelps,
    TreatmentHurts,
    Inconclusive,
};

/** Readable name of a verdict. */
std::string verdictName(Verdict v);

/**
 * The result of measuring one experiment across many setups: the
 * effect estimate with its uncertainty *over the setup distribution*,
 * plus diagnostics quantifying how badly a single-setup experiment
 * could have misled.
 */
struct BiasReport
{
    std::string specDescription;
    std::vector<RunOutcome> outcomes;

    /** Speedups across setups. */
    stats::Sample speedups;

    /** Confidence interval for the mean speedup over setups. */
    stats::ConfidenceInterval speedupCI;

    /**
     * Bias magnitude: (max - min) speedup across setups.  The paper
     * calls bias *significant* when this spread rivals or exceeds the
     * effect being measured.
     */
    double biasMagnitude = 0.0;

    /** |mean speedup - 1|: the size of the effect under study. */
    double effectSize = 0.0;

    /**
     * Setups whose speedup sits on the other side of 1.0 from the
     * mean: each is a setup in which a (careful!) researcher would
     * reach the opposite conclusion.
     */
    int conclusionFlips = 0;

    /** Setup with the smallest / largest observed speedup. */
    ExperimentSetup minSetup;
    ExperimentSetup maxSetup;

    /** The robust verdict at the report's significance threshold. */
    Verdict verdict = Verdict::Inconclusive;

    /**
     * True when the setup-induced spread exceeds the effect size —
     * i.e. when choosing a single setup can dominate the measured
     * result.  This is the paper's operational definition of
     * "significant measurement bias".
     */
    bool biased() const { return biasMagnitude > effectSize; }

    /** Multi-line human-readable rendering. */
    std::string str() const;
};

/**
 * The paper's measurement methodology: run the experiment over many
 * setups and characterize both the effect and the bias.
 */
class BiasAnalyzer
{
  public:
    /**
     * @p threshold is the relative effect below which a speedup is
     * called neutral (default 1%); @p confidence the CI level.
     */
    explicit BiasAnalyzer(double threshold = 0.01,
                          double confidence = 0.95);

    /**
     * Opts in to percentile-bootstrap confidence intervals: aggregate
     * reports then carry a bootstrap CI (@p resamples resamples, seed
     * streams derived from @p seed, computed by the stats engine at
     * @p jobs workers) instead of the Student-t interval.  The engine
     * result is bitwise identical at any jobs value; the default
     * (t interval) is unchanged so existing figures keep their bytes.
     */
    BiasAnalyzer &withBootstrap(int resamples, std::uint64_t seed,
                                unsigned jobs = 1);

    /** Analyzes explicitly provided setups. */
    BiasReport analyze(const ExperimentSpec &spec,
                       const std::vector<ExperimentSetup> &setups) const;

    /** Samples @p n setups from a randomizer, then analyzes. */
    BiasReport analyze(const ExperimentSpec &spec,
                       SetupRandomizer &randomizer, unsigned n) const;

    /**
     * Aggregates outcomes that were already measured elsewhere (e.g.
     * by a parallel campaign, possibly loaded from a result store)
     * into the same report analyze() would have produced.
     */
    BiasReport aggregate(const ExperimentSpec &spec,
                         std::vector<RunOutcome> outcomes) const;

  private:
    double threshold_;
    double confidence_;
    int bootstrapResamples_ = 0; ///< 0: Student-t (the default)
    std::uint64_t bootstrapSeed_ = 0;
    unsigned jobs_ = 1;
};

} // namespace mbias::core

#endif // MBIAS_CORE_BIAS_HH
