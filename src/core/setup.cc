#include "core/setup.hh"

#include <sstream>

#include "base/logging.hh"

namespace mbias::core
{

std::string
ExperimentSetup::str() const
{
    std::ostringstream os;
    os << "env=" << envBytes << " link=" << linkOrder.str();
    return os.str();
}

SetupSpace &
SetupSpace::varyEnvSize(std::uint64_t min, std::uint64_t max)
{
    mbias_assert(min <= max, "bad env range");
    varyEnv_ = true;
    envMin_ = min;
    envMax_ = max;
    return *this;
}

SetupSpace &
SetupSpace::varyLinkOrder()
{
    varyLink_ = true;
    return *this;
}

ExperimentSetup
SetupSpace::sample(Rng &rng) const
{
    mbias_assert(varyEnv_ || varyLink_,
                 "setup space has no varying factor");
    ExperimentSetup s;
    if (varyEnv_)
        s.envBytes = std::uint64_t(
            rng.nextRange(std::int64_t(envMin_), std::int64_t(envMax_)));
    if (varyLink_)
        s.linkOrder = toolchain::LinkOrder::shuffled(rng.next());
    return s;
}

std::vector<ExperimentSetup>
SetupSpace::grid(unsigned points) const
{
    mbias_assert(points >= 1, "grid needs at least one point");
    mbias_assert(varyEnv_ || varyLink_,
                 "setup space has no varying factor");
    std::vector<ExperimentSetup> out;
    out.reserve(points);
    for (unsigned i = 0; i < points; ++i) {
        ExperimentSetup s;
        if (varyEnv_) {
            const std::uint64_t span = envMax_ - envMin_;
            s.envBytes =
                points == 1
                    ? envMin_
                    : envMin_ + span * i / (points - 1);
        }
        if (varyLink_ && !varyEnv_)
            s.linkOrder = i == 0 ? toolchain::LinkOrder::asGiven()
                                 : toolchain::LinkOrder::shuffled(i);
        out.push_back(std::move(s));
    }
    return out;
}

SetupRandomizer::SetupRandomizer(SetupSpace space, std::uint64_t seed)
    : space_(space), rng_(seed)
{
}

std::vector<ExperimentSetup>
SetupRandomizer::sample(unsigned n)
{
    std::vector<ExperimentSetup> out;
    out.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        out.push_back(space_.sample(rng_));
    return out;
}

} // namespace mbias::core
