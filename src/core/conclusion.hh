#ifndef MBIAS_CORE_CONCLUSION_HH
#define MBIAS_CORE_CONCLUSION_HH

#include <string>

#include "core/bias.hh"

namespace mbias::core
{

/**
 * The "wrong data" diagnosis: given a bias report, how likely was a
 * single-setup experiment — the field's standard practice — to reach
 * each possible conclusion?
 */
struct ConclusionCheck
{
    /** The robust (randomized-setup) verdict. */
    Verdict robustVerdict = Verdict::Inconclusive;

    /** Of the measured setups, how many single-setup experiments ... */
    int wouldConcludeHelps = 0; ///< ... would say the treatment helps
    int wouldConcludeHurts = 0; ///< ... would say it hurts
    int wouldConcludeNeutral = 0; ///< ... would call it a wash

    /**
     * True when at least one measured setup supports a conclusion
     * opposite to another measured setup — i.e. the experimenter's
     * (unreported!) setup choice decides the paper's claim.
     */
    bool wrongDataPossible = false;

    /** Probability (over measured setups) of contradicting the robust
     *  verdict. */
    double contradictionRate = 0.0;

    std::string str() const;
};

/**
 * Evaluates how misleading single-setup experimentation would have
 * been for a given experiment.
 */
class ConclusionChecker
{
  public:
    /** @p threshold: relative speedup below which a result is neutral. */
    explicit ConclusionChecker(double threshold = 0.01);

    ConclusionCheck check(const BiasReport &report) const;

    /** Verdict a single-setup experiment reaches from one speedup. */
    Verdict singleSetupVerdict(double speedup) const;

  private:
    double threshold_;
};

} // namespace mbias::core

#endif // MBIAS_CORE_CONCLUSION_HH
