#include "core/causal.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"
#include "core/explain.hh"
#include "stats/regression.hh"

namespace mbias::core
{

std::string
CausalReport::str() const
{
    std::ostringstream os;
    os << "causal analysis of " << specDescription << "\n";
    os << "  counter correlations with the metric (|spearman| ranked):\n";
    for (const auto &c : rankedCauses) {
        if (std::fabs(c.spearman) < 0.05)
            continue;
        os << "    " << sim::counterName(c.counter) << ": spearman "
           << c.spearman << ", pearson " << c.pearson << "\n";
    }
    os << "  setup-factor ANOVA: F=" << factorEffect.fStatistic
       << " p=" << factorEffect.pValue
       << (factorEffect.significant() ? " (significant)" : "") << "\n";
    for (const auto &iv : interventions) {
        os << "  intervention '" << iv.name << "': spread "
           << iv.spreadBefore << " -> " << iv.spreadAfter << " ("
           << iv.reduction() * 100.0 << "% removed"
           << (iv.confirmed() ? ", cause confirmed" : "") << ")\n";
    }
    return os.str();
}

CausalAnalyzer &
CausalAnalyzer::withSweep(SweepFn sweep)
{
    sweep_ = std::move(sweep);
    return *this;
}

CausalAnalyzer &
CausalAnalyzer::withMechanismEvidence(bool on)
{
    wantMechanismEvidence_ = on;
    return *this;
}

std::vector<sim::RunResult>
CausalAnalyzer::runSweep(const ExperimentSpec &spec,
                         const std::vector<ExperimentSetup> &setups,
                         std::uint64_t sp_align) const
{
    if (sweep_)
        return sweep_(spec, setups, sp_align);
    ExperimentRunner runner(spec);
    if (sp_align)
        runner.setSpAlignOverride(sp_align);
    std::vector<sim::RunResult> out;
    out.reserve(setups.size());
    for (const auto &s : setups)
        out.push_back(runner.runSide(spec.baseline, s));
    return out;
}

InterventionResult
CausalAnalyzer::tryIntervention(const ExperimentSpec &spec,
                                const std::vector<ExperimentSetup> &setups,
                                const std::string &name,
                                std::uint64_t sp_align,
                                sim::MachineConfig machine,
                                double spread_before) const
{
    ExperimentSpec modified = spec;
    modified.machine = std::move(machine);
    stats::Sample metric;
    for (const auto &rr : runSweep(modified, setups, sp_align))
        metric.add(metricValue(modified.metric, rr));

    InterventionResult iv;
    iv.name = name;
    iv.spreadBefore = spread_before;
    iv.spreadAfter = metric.range();
    return iv;
}

CausalReport
CausalAnalyzer::analyze(const ExperimentSpec &spec,
                        const std::vector<ExperimentSetup> &setups) const
{
    mbias_assert(setups.size() >= 3, "causal analysis needs >= 3 setups");

    CausalReport report;
    report.specDescription = spec.str();

    // Step 1: measure the baseline across setups and collect counters.
    std::vector<double> metric;
    std::vector<std::vector<double>> counter_series(sim::num_counters);
    for (const auto &rr : runSweep(spec, setups, 0)) {
        metric.push_back(metricValue(spec.metric, rr));
        for (unsigned c = 0; c < sim::num_counters; ++c)
            counter_series[c].push_back(
                double(rr.counters.get(sim::Counter(c))));
    }

    // Rank counters by rank-correlation with the outcome (cycles and
    // instructions are excluded: they are the outcome, not a cause).
    for (unsigned c = 0; c < sim::num_counters; ++c) {
        const auto counter = sim::Counter(c);
        if (counter == sim::Counter::Cycles ||
            counter == sim::Counter::Instructions)
            continue;
        CounterCorrelation cc;
        cc.counter = counter;
        cc.spearman = stats::spearman(counter_series[c], metric);
        cc.pearson = stats::pearson(counter_series[c], metric);
        report.rankedCauses.push_back(cc);
    }
    std::sort(report.rankedCauses.begin(), report.rankedCauses.end(),
              [](const CounterCorrelation &a, const CounterCorrelation &b) {
                  return std::fabs(a.spearman) > std::fabs(b.spearman);
              });

    // ANOVA: does the setup factor matter at all?  Each setup is a
    // group; with a deterministic simulator each group has a single
    // observation, so we group the metric by halves of the setup list
    // (first vs second half) as a crude factor-level split.
    {
        stats::Sample lo, hi;
        for (std::size_t i = 0; i < metric.size(); ++i)
            (i < metric.size() / 2 ? lo : hi).add(metric[i]);
        if (lo.count() >= 2 && hi.count() >= 2)
            report.factorEffect = stats::oneWayAnova({lo, hi});
    }

    const double spread_before =
        *std::max_element(metric.begin(), metric.end()) -
        *std::min_element(metric.begin(), metric.end());

    // Optional: diff the two extreme setups with attribution on, so
    // the report names the concrete sets/entries behind the spread.
    if (wantMechanismEvidence_) {
        const std::size_t lo = std::size_t(
            std::min_element(metric.begin(), metric.end()) -
            metric.begin());
        const std::size_t hi = std::size_t(
            std::max_element(metric.begin(), metric.end()) -
            metric.begin());
        report.mechanismEvidence = mechanismEvidence(
            explainSetupPair(spec, setups[lo], setups[hi]));
    }

    // Step 2: interventions.  Stack alignment first (the paper's
    // env-size cause), then machine-mechanism ablations for the
    // top-ranked counters.
    report.interventions.push_back(
        tryIntervention(spec, setups, "force 64-byte stack alignment", 64,
                        spec.machine, spread_before));

    unsigned tried = 0;
    std::vector<std::string> tried_names;
    for (const auto &cc : report.rankedCauses) {
        if (tried >= 3 || std::fabs(cc.spearman) < 0.3)
            break;
        sim::MachineConfig m = spec.machine;
        std::string name;
        switch (cc.counter) {
          case sim::Counter::LineSplits:
            m.enableLineSplitPenalty = false;
            name = "disable line-split penalty";
            break;
          case sim::Counter::AliasStalls:
            m.enableStoreBufferAliasing = false;
            name = "disable 4K-alias stalls";
            break;
          case sim::Counter::BranchMispredicts:
            m.enableBranchPrediction = false;
            name = "perfect branch prediction";
            break;
          case sim::Counter::BtbMisses:
            m.enableBtb = false;
            name = "perfect BTB";
            break;
          case sim::Counter::IcacheMisses:
          case sim::Counter::DcacheMisses:
          case sim::Counter::L2Misses:
            m.enableCaches = false;
            name = "perfect caches";
            break;
          case sim::Counter::ItlbMisses:
          case sim::Counter::DtlbMisses:
            m.enableTlbs = false;
            name = "perfect TLBs";
            break;
          default:
            continue;
        }
        if (std::find(tried_names.begin(), tried_names.end(), name) !=
            tried_names.end())
            continue;
        tried_names.push_back(name);
        ++tried;
        report.interventions.push_back(tryIntervention(
            spec, setups, name, 0, std::move(m), spread_before));
    }

    return report;
}

} // namespace mbias::core
