#include "core/runner.hh"

#include <chrono>
#include <optional>

#include "base/logging.hh"
#include "obs/trace.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

namespace mbias::core
{

namespace
{

std::uint64_t
microsSince(std::chrono::steady_clock::time_point t0)
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

ExperimentRunner::ExperimentRunner(ExperimentSpec spec)
    : spec_(std::move(spec))
{
}

void
ExperimentRunner::setMetrics(obs::Registry *metrics)
{
    compileCounter_ =
        metrics ? &metrics->counter("runner.compiles") : nullptr;
    runHistogram_ =
        metrics ? &metrics->histogram("runner.run_us") : nullptr;
}

void
ExperimentRunner::bindThread()
{
    const auto self = std::this_thread::get_id();
    if (owner_ == std::thread::id()) {
        owner_ = self;
        return;
    }
    mbias_assert(owner_ == self,
                 "ExperimentRunner used from two threads; the compile "
                 "cache is not synchronized — give each worker its own "
                 "runner (see the class comment)");
}

const std::vector<isa::Module> &
ExperimentRunner::compiled(const toolchain::ToolchainSpec &tc)
{
    bindThread();
    const auto key = std::make_pair(int(tc.vendor), int(tc.level));
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;
    obs::ScopedSpan span("compile", "runner");
    if (compileCounter_)
        compileCounter_->add();
    const auto &w = workloads::findWorkload(spec_.workload);
    toolchain::Compiler cc(tc.vendor, tc.level);
    auto mods = cc.compile(w.build(spec_.workloadConfig));
    return cache_.emplace(key, std::move(mods)).first->second;
}

sim::RunResult
ExperimentRunner::runSide(const toolchain::ToolchainSpec &tc,
                          const ExperimentSetup &setup,
                          bool treatment_side)
{
    // Phase 1: materialize the setup (compile-on-miss, link in this
    // setup's order, load with this setup's environment block).
    std::optional<obs::ScopedSpan> materialize;
    materialize.emplace("setup-materialize", "runner");
    toolchain::Linker linker;
    auto prog = linker.link(compiled(tc), setup.linkOrder);
    toolchain::LoaderConfig lc;
    lc.envBytes = setup.envBytes;
    if (spAlign_)
        lc.spAlign = spAlign_;
    auto image = toolchain::Loader::load(std::move(prog), lc);
    materialize.reset();
    const sim::MachineConfig &mc =
        treatment_side && spec_.treatmentMachine ? *spec_.treatmentMachine
                                                 : spec_.machine;
    sim::Machine machine(mc);
    // Phase 2: the measured simulation itself.
    obs::ScopedSpan runSpan("run", "runner");
    const auto t0 = std::chrono::steady_clock::now();
    auto rr = machine.run(image);
    if (runHistogram_)
        runHistogram_->record(microsSince(t0));
    mbias_assert(rr.halted, "workload did not halt: ", spec_.workload);
    return rr;
}

stats::Sample
ExperimentRunner::repeatedMetric(const toolchain::ToolchainSpec &tc,
                                 const ExperimentSetup &setup,
                                 unsigned reps,
                                 std::uint64_t noise_seed_base)
{
    mbias_assert(reps >= 1, "need at least one repetition");
    toolchain::Linker linker;
    auto prog = linker.link(compiled(tc), setup.linkOrder);
    toolchain::LoaderConfig lc;
    lc.envBytes = setup.envBytes;
    if (spAlign_)
        lc.spAlign = spAlign_;
    auto image = toolchain::Loader::load(std::move(prog), lc);
    sim::Machine machine(spec_.machine);
    stats::Sample out;
    for (unsigned r = 0; r < reps; ++r) {
        auto noise = sim::NoiseModel::withSeed(noise_seed_base + r);
        auto rr = machine.run(image, 500'000'000, noise);
        mbias_assert(rr.halted, "workload did not halt: ", spec_.workload);
        out.add(metricOf(rr));
    }
    return out;
}

stats::Sample
ExperimentRunner::aslrRandomizedMetric(const toolchain::ToolchainSpec &tc,
                                       const ExperimentSetup &setup,
                                       unsigned reps,
                                       std::uint64_t aslr_seed_base)
{
    mbias_assert(reps >= 1, "need at least one repetition");
    std::optional<obs::ScopedSpan> materialize;
    materialize.emplace("setup-materialize", "runner");
    toolchain::Linker linker;
    auto prog = linker.link(compiled(tc), setup.linkOrder);
    materialize.reset();
    stats::Sample out;
    sim::Machine machine(spec_.machine);
    obs::ScopedSpan runSpan("run", "runner");
    for (unsigned r = 0; r < reps; ++r) {
        toolchain::LoaderConfig lc;
        lc.envBytes = setup.envBytes;
        lc.aslrSeed = aslr_seed_base + r;
        if (spAlign_)
            lc.spAlign = spAlign_;
        auto image = toolchain::Loader::load(prog, lc);
        const auto t0 = std::chrono::steady_clock::now();
        auto rr = machine.run(image);
        if (runHistogram_)
            runHistogram_->record(microsSince(t0));
        mbias_assert(rr.halted, "workload did not halt: ", spec_.workload);
        out.add(metricOf(rr));
    }
    return out;
}

double
ExperimentRunner::metricOf(const sim::RunResult &rr) const
{
    switch (spec_.metric) {
      case Metric::Cycles:
        return double(rr.cycles());
      case Metric::Cpi:
        return rr.cpi();
      case Metric::Instructions:
        return double(rr.instructions());
    }
    mbias_panic("bad metric");
}

RunOutcome
ExperimentRunner::run(const ExperimentSetup &setup)
{
    RunOutcome o;
    o.setup = setup;
    o.baseline = runSide(spec_.baseline, setup, false);
    o.treatment = runSide(spec_.treatment, setup, true);
    const double treat = metricOf(o.treatment);
    mbias_assert(treat > 0.0, "degenerate metric");
    o.speedup = metricOf(o.baseline) / treat;
    return o;
}

std::vector<RunOutcome>
ExperimentRunner::runAll(const std::vector<ExperimentSetup> &setups)
{
    std::vector<RunOutcome> out;
    out.reserve(setups.size());
    for (const auto &s : setups)
        out.push_back(run(s));
    return out;
}

} // namespace mbias::core
