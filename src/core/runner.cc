#include "core/runner.hh"

#include <chrono>
#include <utility>

#include "base/logging.hh"
#include "obs/trace.hh"
#include "sim/replay.hh"
#include "toolchain/linker.hh"
#include "toolchain/loader.hh"
#include "workloads/registry.hh"

namespace mbias::core
{

namespace
{

std::uint64_t
microsSince(std::chrono::steady_clock::time_point t0)
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

ExperimentRunner::ExperimentRunner(ExperimentSpec spec)
    : spec_(std::move(spec)), artifacts_(&toolchain::ArtifactCache::global())
{
}

void
ExperimentRunner::setMetrics(obs::Registry *metrics)
{
    compileCounter_ =
        metrics ? &metrics->counter("runner.compiles") : nullptr;
    runHistogram_ =
        metrics ? &metrics->histogram("runner.run_us") : nullptr;
}

toolchain::ModulesPtr
ExperimentRunner::compiledModules(const toolchain::ToolchainSpec &tc)
{
    auto produce = [&]() -> std::vector<isa::Module> {
        obs::ScopedSpan span("compile", "runner");
        if (compileCounter_)
            compileCounter_->add();
        const auto &w = workloads::findWorkload(spec_.workload);
        toolchain::Compiler cc(tc.vendor, tc.level);
        return cc.compile(w.build(spec_.workloadConfig));
    };
    if (artifacts_) {
        // The key carries every compile input; compilation is
        // deterministic, so the inputs identify the output.
        const std::string key =
            spec_.workload + '|' +
            std::to_string(spec_.workloadConfig.scale) + '|' +
            std::to_string(spec_.workloadConfig.seed) + '|' +
            std::to_string(int(tc.vendor)) + '|' +
            std::to_string(int(tc.level));
        return artifacts_->compiled(key, produce);
    }
    const auto key = std::make_pair(int(tc.vendor), int(tc.level));
    auto it = localModules_.find(key);
    if (it != localModules_.end())
        return it->second;
    auto mods = std::make_shared<toolchain::CompiledModules>();
    mods->modules = produce();
    return localModules_.emplace(key, std::move(mods)).first->second;
}

toolchain::ProgramPtr
ExperimentRunner::linkedProgram(const toolchain::ToolchainSpec &tc,
                                const toolchain::LinkOrder &order)
{
    auto mods = compiledModules(tc);
    if (artifacts_)
        return artifacts_->linked(mods, order);
    toolchain::Linker linker;
    return std::make_shared<const toolchain::LinkedProgram>(
        linker.link(mods->modules, order));
}

toolchain::LoaderConfig
ExperimentRunner::loaderConfigFor(const ExperimentSetup &setup) const
{
    toolchain::LoaderConfig lc;
    lc.envBytes = setup.envBytes;
    if (spAlign_)
        lc.spAlign = spAlign_;
    return lc;
}

toolchain::ProcessImage
ExperimentRunner::materialize(const toolchain::ToolchainSpec &tc,
                              const ExperimentSetup &setup)
{
    obs::ScopedSpan span("setup-materialize", "runner");
    auto prog = linkedProgram(tc, setup.linkOrder);
    const toolchain::LoaderConfig lc = loaderConfigFor(setup);
    if (artifacts_)
        return artifacts_->image(prog, lc);
    return toolchain::Loader::load(std::move(prog), lc);
}

sim::RunResult
ExperimentRunner::runSide(const toolchain::ToolchainSpec &tc,
                          const ExperimentSetup &setup,
                          bool treatment_side)
{
    auto image = materialize(tc, setup);
    const sim::MachineConfig &mc =
        treatment_side && spec_.treatmentMachine ? *spec_.treatmentMachine
                                                 : spec_.machine;
    sim::Machine machine(mc);
    obs::ScopedSpan runSpan("run", "runner");
    const auto t0 = std::chrono::steady_clock::now();
    auto rr = machine.run(image);
    if (runHistogram_)
        runHistogram_->record(microsSince(t0));
    mbias_assert(rr.halted, "workload did not halt: ", spec_.workload);
    return rr;
}

sim::RunResult
ExperimentRunner::runProfiled(const toolchain::ToolchainSpec &tc,
                              const ExperimentSetup &setup,
                              sim::Profile *profile,
                              sim::Attribution *attribution,
                              bool treatment_side)
{
    auto image = materialize(tc, setup);
    const sim::MachineConfig &mc =
        treatment_side && spec_.treatmentMachine ? *spec_.treatmentMachine
                                                 : spec_.machine;
    sim::Machine machine(mc);
    obs::ScopedSpan runSpan("run-profiled", "runner");
    const auto t0 = std::chrono::steady_clock::now();
    auto rr = machine.run(image, sim::Machine::kDefaultRunBudget,
                          sim::NoiseModel::none(), profile, attribution);
    if (runHistogram_)
        runHistogram_->record(microsSince(t0));
    mbias_assert(rr.halted, "workload did not halt: ", spec_.workload);
    return rr;
}

stats::Sample
ExperimentRunner::repeatedMetric(const toolchain::ToolchainSpec &tc,
                                 const ExperimentSetup &setup,
                                 unsigned reps,
                                 std::uint64_t noise_seed_base,
                                 const sim::NoiseModel &noise_template)
{
    mbias_assert(reps >= 1, "need at least one repetition");
    auto image = materialize(tc, setup);
    sim::Machine machine(spec_.machine);
    stats::Sample out;
    constexpr std::uint64_t budget = sim::Machine::kDefaultRunBudget;
    // Rep r's model: the caller's template with seed base + r (the
    // default template reproduces the historical withSeed(base + r)).
    const auto noise_for = [&](unsigned rep) {
        sim::NoiseModel n = noise_template;
        n.seed = noise_seed_base + rep;
        return n;
    };

    // Record-once / replay-many: the functional stream is identical
    // across noise seeds (noise perturbs timing and cache state, never
    // a value), so one recorded pass serves every repetition.  The
    // recording itself runs under rep 0's noise model — it IS rep 0 —
    // and later repetitions replay only the timing models per seed,
    // bitwise identical to per-rep execution (replay differential
    // test).  Preconditions failing (tier disabled, oversized stream)
    // drop back to the per-rep loop below.
    std::shared_ptr<const sim::FunctionalTrace> trace;
    unsigned r = 0;
    if (reps > 1 && sim::replayTierUsable(machine)) {
        auto &cache = sim::ReplayCache::global();
        bool unrecordable = false;
        trace = cache.find(image, budget, &unrecordable);
        if (!trace && !unrecordable) {
            auto rr = machine.runRecord(image, budget, noise_for(0), &trace);
            mbias_assert(rr.halted,
                         "workload did not halt: ", spec_.workload);
            out.add(metricOf(rr));
            r = 1;
            cache.insert(image, budget, trace); // null = negative entry
        }
        if (!trace)
            cache.noteFallback();
    }
    for (; r < reps; ++r) {
        const auto noise = noise_for(r);
        auto rr = trace
                      ? machine.runReplay(image, budget, noise, *trace)
                      : machine.run(image, budget, noise);
        mbias_assert(rr.halted, "workload did not halt: ", spec_.workload);
        out.add(metricOf(rr));
    }
    return out;
}

stats::Sample
ExperimentRunner::aslrRandomizedMetric(const toolchain::ToolchainSpec &tc,
                                       const ExperimentSetup &setup,
                                       unsigned reps,
                                       std::uint64_t aslr_seed_base)
{
    mbias_assert(reps >= 1, "need at least one repetition");
    toolchain::ProgramPtr prog;
    {
        obs::ScopedSpan span("setup-materialize", "runner");
        prog = linkedProgram(tc, setup.linkOrder);
    }
    stats::Sample out;
    sim::Machine machine(spec_.machine);
    obs::ScopedSpan runSpan("run", "runner");
    constexpr std::uint64_t budget = sim::Machine::kDefaultRunBudget;

    // ASLR only moves the stack region, so the recorded functional
    // stream is layout-invariant modulo the initial-sp delta: replay
    // rebases stack addresses per draw and re-runs just the timing
    // models.  The ReplayCache key excludes the stack base, so one
    // recording (possibly from repeatedMetric) serves every draw.
    std::shared_ptr<const sim::FunctionalTrace> trace;
    const bool tier_on = reps > 1 && sim::replayTierUsable(machine);
    for (unsigned r = 0; r < reps; ++r) {
        // Each rep loads under a fresh ASLR seed; these one-shot
        // layouts bypass the artifact cache on purpose (they would
        // only displace reusable entries).
        toolchain::LoaderConfig lc = loaderConfigFor(setup);
        lc.aslrSeed = aslr_seed_base + r;
        auto image = toolchain::Loader::load(prog, lc);
        const auto t0 = std::chrono::steady_clock::now();
        sim::RunResult rr;
        if (trace) {
            rr = machine.runReplay(image, budget,
                                   sim::NoiseModel::none(), *trace);
        } else if (r == 0 && tier_on) {
            auto &cache = sim::ReplayCache::global();
            bool unrecordable = false;
            trace = cache.find(image, budget, &unrecordable);
            if (trace) {
                rr = machine.runReplay(image, budget,
                                       sim::NoiseModel::none(), *trace);
            } else if (!unrecordable) {
                rr = machine.runRecord(image, budget,
                                       sim::NoiseModel::none(), &trace);
                cache.insert(image, budget, trace);
                if (!trace)
                    cache.noteFallback();
            } else {
                cache.noteFallback();
                rr = machine.run(image, budget);
            }
        } else {
            rr = machine.run(image, budget);
        }
        if (runHistogram_)
            runHistogram_->record(microsSince(t0));
        mbias_assert(rr.halted, "workload did not halt: ", spec_.workload);
        out.add(metricOf(rr));
    }
    return out;
}

double
metricValue(Metric metric, const sim::RunResult &rr)
{
    switch (metric) {
      case Metric::Cycles:
        return double(rr.cycles());
      case Metric::Cpi:
        return rr.cpi();
      case Metric::Instructions:
        return double(rr.instructions());
    }
    mbias_panic("bad metric");
}

double
ExperimentRunner::metricOf(const sim::RunResult &rr) const
{
    return metricValue(spec_.metric, rr);
}

RunOutcome
ExperimentRunner::run(const ExperimentSetup &setup)
{
    RunOutcome o;
    o.setup = setup;
    o.baseline = runSide(spec_.baseline, setup, false);
    o.treatment = runSide(spec_.treatment, setup, true);
    const double treat = metricOf(o.treatment);
    mbias_assert(treat > 0.0, "degenerate metric");
    o.speedup = metricOf(o.baseline) / treat;
    return o;
}

std::vector<RunOutcome>
ExperimentRunner::runAll(const std::vector<ExperimentSetup> &setups)
{
    std::vector<RunOutcome> out;
    out.reserve(setups.size());
    for (const auto &s : setups)
        out.push_back(run(s));
    return out;
}

} // namespace mbias::core
