#ifndef MBIAS_CORE_TABLE_HH
#define MBIAS_CORE_TABLE_HH

#include <initializer_list>
#include <string>
#include <vector>

namespace mbias::core
{

/**
 * Minimal fixed-width text table used by the benchmark harness to
 * print the paper's tables and figure series without a plotting
 * dependency.
 */
class TextTable
{
  public:
    /** Creates a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Appends a row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: formats each double with @p precision digits. */
    void addRow(const std::string &label,
                const std::vector<double> &values, int precision = 4);

    /** Renders with aligned columns. */
    std::string str() const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with fixed precision. */
std::string fmt(double v, int precision = 4);

} // namespace mbias::core

#endif // MBIAS_CORE_TABLE_HH
