#include "core/table.hh"

#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace mbias::core
{

std::string
fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    mbias_assert(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    mbias_assert(cells.size() == headers_.size(),
                 "row width does not match header");
    rows_.push_back(std::move(cells));
}

void
TextTable::addRow(const std::string &label,
                  const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.push_back(label);
    for (double v : values)
        cells.push_back(fmt(v, precision));
    addRow(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(int(width[c]) + 2) << row[c];
        }
        os << "\n";
    };
    emit(headers_);
    std::vector<std::string> rule;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        rule.push_back(std::string(width[c], '-'));
    emit(rule);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

} // namespace mbias::core
