#include "core/variance.hh"

#include <limits>
#include <sstream>

#include "base/logging.hh"
#include "stats/streaming.hh"

namespace mbias::core
{

std::string
VarianceReport::str() const
{
    std::ostringstream os;
    os << "variance decomposition for " << specDescription << "\n";
    os << "  within one setup (" << withinSetup.count()
       << " noisy repetitions): speedup " << withinCI.str() << "\n";
    os << "  across setups (" << betweenSetups.count()
       << " setups): speedup " << betweenCI.str() << "\n";
    os << "  between/within variance ratio: " << varianceRatio << "\n";
    if (falseConfidence)
        os << "  ** FALSE CONFIDENCE: the repetition CI excludes the "
              "cross-setup mean — a tight interval around the wrong "
              "value **\n";
    return os.str();
}

VarianceAnalyzer::VarianceAnalyzer(unsigned reps, std::uint64_t noise_seed,
                                   double confidence)
    : reps_(reps), noiseSeed_(noise_seed), confidence_(confidence)
{
    mbias_assert(reps >= 2, "variance needs >= 2 repetitions");
    mbias_assert(confidence > 0.0 && confidence < 1.0, "bad confidence");
}

VarianceReport
VarianceAnalyzer::analyze(const ExperimentSpec &spec,
                          const ExperimentSetup &home,
                          const std::vector<ExperimentSetup> &setups) const
{
    mbias_assert(setups.size() >= 2, "need >= 2 setups");
    ExperimentRunner runner(spec);

    // Within: repeat base and treatment at the home setup.
    std::vector<double> within;
    auto base = runner.repeatedMetric(spec.baseline, home, reps_,
                                      noiseSeed_);
    auto treat = runner.repeatedMetric(spec.treatment, home, reps_,
                                       noiseSeed_ + 7919);
    for (unsigned i = 0; i < reps_; ++i)
        within.push_back(base.values()[i] / treat.values()[i]);

    // Between: one noisy repetition per setup.
    std::vector<double> between;
    std::uint64_t seed = noiseSeed_ + 104729;
    for (const auto &s : setups) {
        auto b = runner.repeatedMetric(spec.baseline, s, 1, seed);
        auto t = runner.repeatedMetric(spec.treatment, s, 1, seed + 1);
        between.push_back(b.values()[0] / t.values()[0]);
        seed += 2;
    }

    return aggregate(spec, within, between);
}

VarianceReport
VarianceAnalyzer::aggregate(const ExperimentSpec &spec,
                            const std::vector<double> &within,
                            const std::vector<double> &between) const
{
    mbias_assert(within.size() >= 2, "need >= 2 within-setup ratios");
    mbias_assert(between.size() >= 2, "need >= 2 between-setup ratios");

    VarianceReport r;
    r.specDescription = spec.str();

    // The streaming twins track single-pass Welford moments alongside
    // the retained samples; the variance ratio reads those, so it
    // never needs the raw vectors (and exercises the streaming path
    // the report aggregation uses at campaign scale).
    stats::StreamingSample withinStream, betweenStream;
    for (const double v : within) {
        r.withinSetup.add(v);
        withinStream.add(v);
    }
    r.withinCI = stats::tInterval(r.withinSetup, confidence_);

    for (const double v : between) {
        r.betweenSetups.add(v);
        betweenStream.add(v);
    }
    r.betweenCI = stats::tInterval(r.betweenSetups, confidence_);

    const double wv = withinStream.variance();
    r.varianceRatio = wv > 0.0 ? betweenStream.variance() / wv
                               : std::numeric_limits<double>::infinity();
    r.falseConfidence = !r.withinCI.contains(r.betweenSetups.mean());
    return r;
}

} // namespace mbias::core
