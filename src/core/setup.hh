#ifndef MBIAS_CORE_SETUP_HH
#define MBIAS_CORE_SETUP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/random.hh"
#include "toolchain/linkorder.hh"

namespace mbias::core
{

/**
 * One concrete choice of the "innocuous" experimental-setup factors:
 * the UNIX environment size and the link order.  The paper's central
 * observation is that this choice — which almost no paper reports —
 * can flip the conclusion of an optimization study.
 */
struct ExperimentSetup
{
    std::uint64_t envBytes = 0;
    toolchain::LinkOrder linkOrder = toolchain::LinkOrder::asGiven();

    /** e.g. "env=960 link=shuffled(17)". */
    std::string str() const;

    bool operator==(const ExperimentSetup &) const = default;
};

/**
 * The space of setups an experiment could legitimately have been run
 * in.  Factors are opt-in so studies can isolate one factor (the
 * paper's per-factor sections) or combine them (its setup
 * randomization remedy).
 */
class SetupSpace
{
  public:
    SetupSpace() = default;

    /** Varies the environment size uniformly in [min, max] bytes. */
    SetupSpace &varyEnvSize(std::uint64_t min = 0,
                            std::uint64_t max = 4096);

    /** Varies the module link order over random permutations. */
    SetupSpace &varyLinkOrder();

    bool envVaries() const { return varyEnv_; }
    bool linkOrderVaries() const { return varyLink_; }
    std::uint64_t envMin() const { return envMin_; }
    std::uint64_t envMax() const { return envMax_; }

    /** Draws one setup uniformly from the space. */
    ExperimentSetup sample(Rng &rng) const;

    /**
     * A deterministic sweep of @p points setups: the env factor is
     * swept on an evenly spaced grid (non-varying factors stay at
     * their defaults); if only link order varies, seeds 0..points-1
     * are used.
     */
    std::vector<ExperimentSetup> grid(unsigned points) const;

  private:
    bool varyEnv_ = false;
    std::uint64_t envMin_ = 0;
    std::uint64_t envMax_ = 4096;
    bool varyLink_ = false;
};

/**
 * The paper's first remedy: *experimental setup randomization*.
 * Instead of measuring in one (arbitrary, possibly lucky) setup,
 * sample many setups and report the effect with a confidence interval
 * over the setup distribution.
 */
class SetupRandomizer
{
  public:
    SetupRandomizer(SetupSpace space, std::uint64_t seed);

    /** Draws @p n independent setups. */
    std::vector<ExperimentSetup> sample(unsigned n);

    const SetupSpace &space() const { return space_; }

  private:
    SetupSpace space_;
    Rng rng_;
};

} // namespace mbias::core

#endif // MBIAS_CORE_SETUP_HH
