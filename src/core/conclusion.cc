#include "core/conclusion.hh"

#include <sstream>

#include "base/logging.hh"

namespace mbias::core
{

std::string
ConclusionCheck::str() const
{
    std::ostringstream os;
    os << "robust verdict: " << verdictName(robustVerdict) << "\n";
    os << "single-setup experiments concluding helps/hurts/neutral: "
       << wouldConcludeHelps << "/" << wouldConcludeHurts << "/"
       << wouldConcludeNeutral << "\n";
    os << "contradiction rate: " << contradictionRate << "\n";
    if (wrongDataPossible)
        os << "** a single-setup experiment can produce wrong data for "
              "this study **\n";
    return os.str();
}

ConclusionChecker::ConclusionChecker(double threshold)
    : threshold_(threshold)
{
    mbias_assert(threshold >= 0.0, "negative threshold");
}

Verdict
ConclusionChecker::singleSetupVerdict(double speedup) const
{
    if (speedup > 1.0 + threshold_)
        return Verdict::TreatmentHelps;
    if (speedup < 1.0 - threshold_)
        return Verdict::TreatmentHurts;
    return Verdict::Inconclusive;
}

ConclusionCheck
ConclusionChecker::check(const BiasReport &report) const
{
    ConclusionCheck c;
    c.robustVerdict = report.verdict;
    int contradicting = 0;
    for (const auto &o : report.outcomes) {
        const Verdict v = singleSetupVerdict(o.speedup);
        switch (v) {
          case Verdict::TreatmentHelps:
            ++c.wouldConcludeHelps;
            break;
          case Verdict::TreatmentHurts:
            ++c.wouldConcludeHurts;
            break;
          case Verdict::Inconclusive:
            ++c.wouldConcludeNeutral;
            break;
        }
        if (v != Verdict::Inconclusive && v != c.robustVerdict)
            ++contradicting;
    }
    c.wrongDataPossible =
        c.wouldConcludeHelps > 0 && c.wouldConcludeHurts > 0;
    c.contradictionRate = report.outcomes.empty()
                              ? 0.0
                              : double(contradicting) /
                                    double(report.outcomes.size());
    return c;
}

} // namespace mbias::core
