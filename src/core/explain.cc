#include "core/explain.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "base/logging.hh"
#include "core/runner.hh"
#include "obs/heatmap.hh"
#include "obs/trace.hh"
#include "sim/counters.hh"

namespace mbias::core
{

namespace
{

std::int64_t
counterDelta(const ExplainReport &r, sim::Counter c)
{
    return std::int64_t(r.resultB.counters.get(c)) -
           std::int64_t(r.resultA.counters.get(c));
}

/** Per-set miss deltas (B - A) of one structure, as doubles for the
 *  heatmap renderer. */
std::vector<double>
missDelta(const sim::SetCounters &a, const sim::SetCounters &b)
{
    std::vector<double> out(b.misses.size(), 0.0);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = double(b.misses[i]) -
                 double(i < a.misses.size() ? a.misses[i] : 0);
    return out;
}

std::vector<double>
aliasDelta(const sim::TableCounters &a, const sim::TableCounters &b)
{
    std::vector<double> out(b.aliasSwitches.size(), 0.0);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = double(b.aliasSwitches[i]) -
                 double(i < a.aliasSwitches.size() ? a.aliasSwitches[i]
                                                   : 0);
    return out;
}

/** Index with the largest |delta| (lowest index wins ties). */
std::size_t
hottestIndex(const std::vector<double> &delta)
{
    std::size_t best = 0;
    double best_mag = -1.0;
    for (std::size_t i = 0; i < delta.size(); ++i) {
        if (std::fabs(delta[i]) > best_mag) {
            best_mag = std::fabs(delta[i]);
            best = i;
        }
    }
    return best;
}

std::string
setEvidence(const char *what, const sim::SetCounters &a,
            const sim::SetCounters &b)
{
    if (!sim::Attribution::enabled())
        return "(attribution compiled out: -DMBIAS_OBS=OFF)";
    const auto delta = missDelta(a, b);
    if (delta.empty())
        return "(no sets)";
    const std::size_t hot = hottestIndex(delta);
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s %zu: %+lld misses (A %llu, B %llu)",
                  what, hot, (long long)delta[hot],
                  (unsigned long long)(hot < a.misses.size()
                                           ? a.misses[hot]
                                           : 0),
                  (unsigned long long)b.misses[hot]);
    return buf;
}

std::string
entryEvidence(const char *what, const sim::TableCounters &a,
              const sim::TableCounters &b)
{
    if (!sim::Attribution::enabled())
        return "(attribution compiled out: -DMBIAS_OBS=OFF)";
    const auto delta = aliasDelta(a, b);
    if (delta.empty())
        return "(no entries)";
    const std::size_t hot = hottestIndex(delta);
    char buf[192];
    int n = std::snprintf(buf, sizeof buf,
                          "%s %zu: %+lld alias switches, pcs", what, hot,
                          (long long)delta[hot]);
    const unsigned pcs = b.distinctPcs(hot);
    for (unsigned i = 0; i < pcs && n > 0 && std::size_t(n) < sizeof buf;
         ++i)
        n += std::snprintf(buf + n, sizeof buf - n, " 0x%llx",
                           (unsigned long long)
                               b.pcs[hot * sim::TableCounters::kPcsPerEntry +
                                     i]);
    if (pcs == 0 && n > 0 && std::size_t(n) < sizeof buf)
        std::snprintf(buf + n, sizeof buf - n, " (none recorded)");
    return buf;
}

/** Evidence from the function diff: the row with the largest |delta|
 *  of @p field. */
std::string
functionEvidence(const std::vector<FunctionDelta> &functions,
                 std::int64_t FunctionDelta::*field, const char *what)
{
    const FunctionDelta *best = nullptr;
    std::int64_t best_mag = 0;
    for (const auto &f : functions) {
        const std::int64_t mag = std::llabs(f.*field);
        if (mag > best_mag) {
            best_mag = mag;
            best = &f;
        }
    }
    if (!best)
        return "(no function moved)";
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s: %+lld %s", best->name.c_str(),
                  (long long)(best->*field), what);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

void
appendDeltaArray(std::string &os, const char *key,
                 const std::vector<double> &delta)
{
    os += '"';
    os += key;
    os += "\":[";
    char num[32];
    for (std::size_t i = 0; i < delta.size(); ++i) {
        std::snprintf(num, sizeof num, "%s%lld", i ? "," : "",
                      (long long)delta[i]);
        os += num;
    }
    os += ']';
}

} // namespace

bool
parseSetupSpec(const std::string &text, ExperimentSetup &out,
               std::string &error)
{
    out = ExperimentSetup{};
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find(',', pos);
        if (end == std::string::npos)
            end = text.size();
        const std::string part = text.substr(pos, end - pos);
        pos = end + 1;
        if (part.empty())
            continue;
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos) {
            error = "setup spec part '" + part + "' is not key=value";
            return false;
        }
        const std::string key = part.substr(0, eq);
        const std::string val = part.substr(eq + 1);
        if (key == "env") {
            try {
                out.envBytes = std::stoull(val);
            } catch (...) {
                error = "bad env size '" + val + "'";
                return false;
            }
        } else if (key == "link") {
            if (val == "given") {
                out.linkOrder = toolchain::LinkOrder::asGiven();
            } else if (val == "alpha") {
                out.linkOrder = toolchain::LinkOrder::alphabetical();
            } else if (val.rfind("seed:", 0) == 0) {
                try {
                    out.linkOrder = toolchain::LinkOrder::shuffled(
                        std::stoull(val.substr(5)));
                } catch (...) {
                    error = "bad link seed '" + val + "'";
                    return false;
                }
            } else {
                error = "bad link spec '" + val +
                        "' (want given|alpha|seed:N)";
                return false;
            }
        } else {
            error = "unknown setup key '" + key + "' (want env|link)";
            return false;
        }
    }
    return true;
}

ExplainReport
explainSetupPair(const ExperimentSpec &spec, const ExperimentSetup &a,
                 const ExperimentSetup &b)
{
    obs::ScopedSpan span("explain", "core");

    ExplainReport r;
    r.workload = spec.workload;
    r.toolchain = spec.baseline.str();
    r.machineName = spec.machine.name;
    r.setupA = a;
    r.setupB = b;

    ExperimentRunner runner(spec);
    r.resultA =
        runner.runProfiled(spec.baseline, a, &r.profileA, &r.attrA);
    r.resultB =
        runner.runProfiled(spec.baseline, b, &r.profileB, &r.attrB);

    // ProfileDiff: match functions by name (link order permutes the
    // profile's function order between the two runs).
    std::map<std::string, const sim::FunctionProfile *> byName;
    for (const auto &f : r.profileA.functions)
        byName[f.name] = &f;
    for (const auto &fb : r.profileB.functions) {
        const auto it = byName.find(fb.name);
        if (it == byName.end())
            continue;
        const sim::FunctionProfile &fa = *it->second;
        FunctionDelta d;
        d.name = fb.name;
        d.cyclesA = fa.cycles;
        d.cyclesB = fb.cycles;
        d.delta = std::int64_t(fb.cycles) - std::int64_t(fa.cycles);
        const auto df = [](std::uint64_t bb, std::uint64_t aa) {
            return std::int64_t(bb) - std::int64_t(aa);
        };
        d.icacheMisses = df(fb.icacheMisses, fa.icacheMisses);
        d.dcacheMisses = df(fb.dcacheMisses, fa.dcacheMisses);
        d.branchMispredicts =
            df(fb.branchMispredicts, fa.branchMispredicts);
        d.btbMisses = df(fb.btbMisses, fa.btbMisses);
        d.lineSplits = df(fb.lineSplits, fa.lineSplits);
        d.aliasStalls = df(fb.aliasStalls, fa.aliasStalls);
        d.stallCycles = df(fb.stallCycles, fa.stallCycles);
        d.fetchGroups = df(fb.fetchGroups, fa.fetchGroups);
        r.functions.push_back(std::move(d));
    }
    std::sort(r.functions.begin(), r.functions.end(),
              [](const FunctionDelta &x, const FunctionDelta &y) {
                  if (std::llabs(x.delta) != std::llabs(y.delta))
                      return std::llabs(x.delta) > std::llabs(y.delta);
                  return x.name < y.name;
              });

    // Mechanism ranking: each event class's count delta weighted by
    // its configured penalty.  Fetch-side penalties hit the clock
    // directly; data-side latencies can be partially hidden by the
    // OoO window, so their weighted cycles are an upper bound — the
    // ranking is a where-to-look order, not an exact decomposition.
    const sim::MachineConfig &mc = spec.machine;
    using C = sim::Counter;
    const struct
    {
        const char *key;
        const char *name;
        C counter;
        std::uint64_t penalty;
        std::string evidence;
    } defs[] = {
        {"icache_set_conflict", "icache-set conflict", C::IcacheMisses,
         mc.icache.missPenalty, setEvidence("set", r.attrA.icache,
                                            r.attrB.icache)},
        // Every fetch group is one front-end cycle: code placement
        // that straddles more fetch blocks costs exactly its delta.
        {"fetch_alignment", "fetch-block alignment", C::FetchGroups, 1,
         functionEvidence(r.functions, &FunctionDelta::fetchGroups,
                          "fetch groups")},
        {"dcache_set_conflict", "dcache-set conflict", C::DcacheMisses,
         mc.dcache.missPenalty, setEvidence("set", r.attrA.dcache,
                                            r.attrB.dcache)},
        {"l2_conflict", "L2 conflict", C::L2Misses, mc.l2.missPenalty,
         functionEvidence(r.functions, &FunctionDelta::dcacheMisses,
                          "d$ misses")},
        {"itlb_pressure", "ITLB pressure", C::ItlbMisses,
         mc.itlb.missPenalty, setEvidence("bucket", r.attrA.itlb,
                                          r.attrB.itlb)},
        {"dtlb_pressure", "DTLB pressure", C::DtlbMisses,
         mc.dtlb.missPenalty, setEvidence("bucket", r.attrA.dtlb,
                                          r.attrB.dtlb)},
        {"pht_aliasing", "branch-predictor aliasing",
         C::BranchMispredicts, mc.branchMispredictPenalty,
         entryEvidence("entry", r.attrA.pht, r.attrB.pht)},
        {"btb_aliasing", "BTB aliasing", C::BtbMisses, mc.btbMissPenalty,
         entryEvidence("set", r.attrA.btb, r.attrB.btb)},
        {"stack_align_line_splits", "stack-alignment line splits",
         C::LineSplits, mc.lineSplitPenalty,
         functionEvidence(r.functions, &FunctionDelta::lineSplits,
                          "line splits")},
        {"store_load_aliasing", "store-load (4K) aliasing",
         C::AliasStalls, mc.aliasPenalty,
         functionEvidence(r.functions, &FunctionDelta::aliasStalls,
                          "alias stalls")},
    };
    double total_weight = 0.0;
    for (const auto &def : defs) {
        MechanismContribution m;
        m.key = def.key;
        m.name = def.name;
        m.eventDelta = counterDelta(r, def.counter);
        m.weightedCycles = m.eventDelta * std::int64_t(def.penalty);
        m.evidence = def.evidence;
        total_weight += double(std::llabs(m.weightedCycles));
        r.mechanisms.push_back(std::move(m));
    }
    for (auto &m : r.mechanisms)
        m.share = total_weight > 0.0
                      ? double(std::llabs(m.weightedCycles)) / total_weight
                      : 0.0;
    std::sort(r.mechanisms.begin(), r.mechanisms.end(),
              [](const MechanismContribution &x,
                 const MechanismContribution &y) {
                  if (std::llabs(x.weightedCycles) !=
                      std::llabs(y.weightedCycles))
                      return std::llabs(x.weightedCycles) >
                             std::llabs(y.weightedCycles);
                  return x.key < y.key;
              });
    return r;
}

std::string
ExplainReport::dominantMechanism() const
{
    if (mechanisms.empty() || mechanisms.front().weightedCycles == 0)
        return "none";
    return mechanisms.front().name;
}

std::string
ExplainReport::str(unsigned top_functions) const
{
    char line[256];
    std::string os;
    std::snprintf(line, sizeof line,
                  "mbias explain (schema v%d)\n", kSchemaVersion);
    os += line;
    std::snprintf(line, sizeof line, "  workload : %s (%s on %s)\n",
                  workload.c_str(), toolchain.c_str(),
                  machineName.c_str());
    os += line;
    std::snprintf(line, sizeof line, "  setup A  : %s\n",
                  setupA.str().c_str());
    os += line;
    std::snprintf(line, sizeof line, "  setup B  : %s\n",
                  setupB.str().c_str());
    os += line;
    const double pct =
        resultA.cycles()
            ? 100.0 * double(cycleDelta()) / double(resultA.cycles())
            : 0.0;
    std::snprintf(line, sizeof line,
                  "  cycles   : A=%llu  B=%llu  delta=%+lld (%+.3f%%)\n",
                  (unsigned long long)resultA.cycles(),
                  (unsigned long long)resultB.cycles(),
                  (long long)cycleDelta(), pct);
    os += line;

    os += "\nmechanisms ranked by |event delta x penalty|:\n";
    std::snprintf(line, sizeof line, "  %4s  %-28s %10s %12s %6s\n",
                  "rank", "mechanism", "events-d", "cycles-d", "share");
    os += line;
    unsigned rank = 0;
    for (const auto &m : mechanisms) {
        ++rank;
        std::snprintf(line, sizeof line,
                      "  %4u  %-28s %+10lld %+12lld %5.1f%%\n", rank,
                      m.name.c_str(), (long long)m.eventDelta,
                      (long long)m.weightedCycles, 100.0 * m.share);
        os += line;
        std::snprintf(line, sizeof line, "        `- %s\n",
                      m.evidence.c_str());
        os += line;
    }
    std::snprintf(line, sizeof line, "  dominant mechanism: %s\n",
                  dominantMechanism().c_str());
    os += line;

    std::snprintf(line, sizeof line,
                  "\nfunctions ranked by |cycle delta| (top %u):\n",
                  top_functions);
    os += line;
    std::snprintf(line, sizeof line,
                  "  %-16s %12s %12s %10s %7s %7s %7s %7s %8s\n",
                  "function", "cycles-A", "cycles-B", "delta", "i$-d",
                  "d$-d", "misp-d", "split-d", "fetch-d");
    os += line;
    unsigned shown = 0;
    for (const auto &f : functions) {
        if (shown++ >= top_functions)
            break;
        std::snprintf(line, sizeof line,
                      "  %-16s %12llu %12llu %+10lld %+7lld %+7lld "
                      "%+7lld %+7lld %+8lld\n",
                      f.name.c_str(), (unsigned long long)f.cyclesA,
                      (unsigned long long)f.cyclesB, (long long)f.delta,
                      (long long)f.icacheMisses, (long long)f.dcacheMisses,
                      (long long)f.branchMispredicts,
                      (long long)f.lineSplits, (long long)f.fetchGroups);
        os += line;
    }
    return os;
}

std::string
ExplainReport::heatmaps() const
{
    std::string os = "attribution delta heatmaps (B - A):\n";
    if (!sim::Attribution::enabled()) {
        os += "  (attribution compiled out: -DMBIAS_OBS=OFF)\n";
        return os;
    }
    os += obs::asciiHeatmapSigned("icache miss delta per set",
                                  missDelta(attrA.icache, attrB.icache));
    os += obs::asciiHeatmapSigned("dcache miss delta per set",
                                  missDelta(attrA.dcache, attrB.dcache));
    os += obs::asciiHeatmapSigned("itlb miss delta per VPN bucket",
                                  missDelta(attrA.itlb, attrB.itlb));
    os += obs::asciiHeatmapSigned("dtlb miss delta per VPN bucket",
                                  missDelta(attrA.dtlb, attrB.dtlb));
    os += obs::asciiHeatmapSigned("btb alias-switch delta per set",
                                  aliasDelta(attrA.btb, attrB.btb));

    os += "top aliased PHT entries (by |alias-switch delta|):\n";
    const auto delta = aliasDelta(attrA.pht, attrB.pht);
    std::vector<std::size_t> order(delta.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) {
                  if (std::fabs(delta[x]) != std::fabs(delta[y]))
                      return std::fabs(delta[x]) > std::fabs(delta[y]);
                  return x < y;
              });
    char line[192];
    unsigned shown = 0;
    for (std::size_t idx : order) {
        if (delta[idx] == 0.0 || shown >= 5)
            break;
        ++shown;
        int n = std::snprintf(line, sizeof line,
                              "  entry %4zu: %+6lld switches, pcs", idx,
                              (long long)delta[idx]);
        for (unsigned i = 0; i < attrB.pht.distinctPcs(idx) && n > 0 &&
                             std::size_t(n) < sizeof line;
             ++i)
            n += std::snprintf(
                line + n, sizeof line - n, " 0x%llx",
                (unsigned long long)
                    attrB.pht.pcs[idx * sim::TableCounters::kPcsPerEntry +
                                  i]);
        os += line;
        os += "\n";
    }
    if (shown == 0)
        os += "  (no PHT entry moved)\n";
    return os;
}

std::string
ExplainReport::toJson() const
{
    char num[192];
    std::string os = "{\"mbias_explain\":";
    os += std::to_string(kSchemaVersion);
    os += ",\"workload\":\"" + jsonEscape(workload) + "\"";
    os += ",\"toolchain\":\"" + jsonEscape(toolchain) + "\"";
    os += ",\"machine\":\"" + jsonEscape(machineName) + "\"";
    os += ",\"setup_a\":\"" + jsonEscape(setupA.str()) + "\"";
    os += ",\"setup_b\":\"" + jsonEscape(setupB.str()) + "\"";
    std::snprintf(num, sizeof num,
                  ",\"cycles_a\":%llu,\"cycles_b\":%llu,"
                  "\"cycle_delta\":%lld",
                  (unsigned long long)resultA.cycles(),
                  (unsigned long long)resultB.cycles(),
                  (long long)cycleDelta());
    os += num;
    os += ",\"attribution_enabled\":";
    os += sim::Attribution::enabled() ? "true" : "false";
    os += ",\"dominant_mechanism\":\"" + jsonEscape(dominantMechanism()) +
          "\"";

    os += ",\"mechanisms\":[";
    bool first = true;
    for (const auto &m : mechanisms) {
        os += first ? "" : ",";
        first = false;
        os += "{\"key\":\"" + jsonEscape(m.key) + "\",\"name\":\"" +
              jsonEscape(m.name) + "\"";
        std::snprintf(num, sizeof num,
                      ",\"event_delta\":%lld,\"weighted_cycles\":%lld,"
                      "\"share\":%.3f",
                      (long long)m.eventDelta, (long long)m.weightedCycles,
                      m.share);
        os += num;
        os += ",\"evidence\":\"" + jsonEscape(m.evidence) + "\"}";
    }
    os += "]";

    os += ",\"functions\":[";
    first = true;
    for (const auto &f : functions) {
        os += first ? "" : ",";
        first = false;
        os += "{\"name\":\"" + jsonEscape(f.name) + "\"";
        std::snprintf(num, sizeof num,
                      ",\"cycles_a\":%llu,\"cycles_b\":%llu,"
                      "\"delta\":%lld,\"icache\":%lld,\"dcache\":%lld,"
                      "\"mispredicts\":%lld,\"btb\":%lld,"
                      "\"line_splits\":%lld,\"alias_stalls\":%lld,"
                      "\"stall_cycles\":%lld,\"fetch_groups\":%lld}",
                      (unsigned long long)f.cyclesA,
                      (unsigned long long)f.cyclesB, (long long)f.delta,
                      (long long)f.icacheMisses, (long long)f.dcacheMisses,
                      (long long)f.branchMispredicts,
                      (long long)f.btbMisses, (long long)f.lineSplits,
                      (long long)f.aliasStalls, (long long)f.stallCycles,
                      (long long)f.fetchGroups);
        os += num;
    }
    os += "]";

    os += ",\"attribution\":{";
    appendDeltaArray(os, "icache_miss_delta",
                     missDelta(attrA.icache, attrB.icache));
    os += ",";
    appendDeltaArray(os, "dcache_miss_delta",
                     missDelta(attrA.dcache, attrB.dcache));
    os += ",";
    appendDeltaArray(os, "itlb_miss_delta",
                     missDelta(attrA.itlb, attrB.itlb));
    os += ",";
    appendDeltaArray(os, "dtlb_miss_delta",
                     missDelta(attrA.dtlb, attrB.dtlb));
    os += ",";
    appendDeltaArray(os, "btb_alias_delta",
                     aliasDelta(attrA.btb, attrB.btb));
    os += "}}";
    return os;
}

std::size_t
ExplainReport::emitCounterTracks() const
{
    obs::Tracer &tracer = obs::Tracer::global();
    if (!tracer.active() || !sim::Attribution::enabled())
        return 0;
    std::size_t emitted = 0;
    const auto track = [&](const char *name, const sim::SetCounters &a,
                           const sim::SetCounters &b) {
        for (std::size_t i = 0; i < b.misses.size(); ++i) {
            obs::TraceEvent e;
            e.name = name;
            e.cat = "explain";
            e.ph = 'C';
            e.tsUs = i; // counter x-axis = set index
            char args[96];
            std::snprintf(
                args, sizeof args, "{\"a\":%llu,\"b\":%llu,\"delta\":%lld}",
                (unsigned long long)(i < a.misses.size() ? a.misses[i]
                                                         : 0),
                (unsigned long long)b.misses[i],
                (long long)(std::int64_t(b.misses[i]) -
                            std::int64_t(i < a.misses.size()
                                             ? a.misses[i]
                                             : 0)));
            e.args = args;
            tracer.record(std::move(e));
            ++emitted;
        }
    };
    track("explain.icache_misses", attrA.icache, attrB.icache);
    track("explain.dcache_misses", attrA.dcache, attrB.dcache);
    track("explain.itlb_misses", attrA.itlb, attrB.itlb);
    track("explain.dtlb_misses", attrA.dtlb, attrB.dtlb);
    return emitted;
}

std::string
mechanismEvidence(const ExplainReport &report, unsigned top)
{
    char line[256];
    std::string os;
    std::snprintf(line, sizeof line,
                  "mechanism evidence (%s vs %s): dominant %s\n",
                  report.setupA.str().c_str(), report.setupB.str().c_str(),
                  report.dominantMechanism().c_str());
    os += line;
    unsigned shown = 0;
    for (const auto &m : report.mechanisms) {
        if (shown++ >= top)
            break;
        std::snprintf(line, sizeof line,
                      "  %-28s %+10lld weighted cycles  %s\n",
                      m.name.c_str(), (long long)m.weightedCycles,
                      m.evidence.c_str());
        os += line;
    }
    return os;
}

} // namespace mbias::core
