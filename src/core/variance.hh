#ifndef MBIAS_CORE_VARIANCE_HH
#define MBIAS_CORE_VARIANCE_HH

#include <string>
#include <vector>

#include "core/runner.hh"
#include "stats/ci.hh"
#include "stats/sample.hh"

namespace mbias::core
{

/**
 * The false-confidence diagnosis: within-setup (visible) variance vs
 * between-setup (invisible) bias.
 *
 * The conventional methodology repeats a run k times in one setup and
 * reports mean +- CI.  The paper's observation is that this CI can be
 * *tight around the wrong value*: run-to-run noise is small, while the
 * setup-induced offset is large and perfectly reproducible, so no
 * amount of repetition reveals it.
 */
struct VarianceReport
{
    std::string specDescription;

    /** Speedups from @c reps noisy repetitions at the home setup. */
    stats::Sample withinSetup;
    stats::ConfidenceInterval withinCI;

    /** Speedups across distinct setups (one noisy run each). */
    stats::Sample betweenSetups;
    stats::ConfidenceInterval betweenCI;

    /** Between-setup variance over within-setup variance. */
    double varianceRatio = 0.0;

    /**
     * The trap: the within-setup CI (what a careful single-setup paper
     * would publish) excludes the cross-setup mean (the truth).
     */
    bool falseConfidence = false;

    std::string str() const;
};

/** Decomposes measurement variation into noise and bias components. */
class VarianceAnalyzer
{
  public:
    /** @p confidence is the level of both reported intervals. */
    explicit VarianceAnalyzer(unsigned reps = 15,
                              std::uint64_t noise_seed = 0xfeed,
                              double confidence = 0.95);

    /**
     * @p home is the setup the hypothetical experimenter happens to
     * have; @p setups the space their peers might have instead.
     */
    VarianceReport analyze(const ExperimentSpec &spec,
                           const ExperimentSetup &home,
                           const std::vector<ExperimentSetup> &setups) const;

    /**
     * Builds the report from ratio samples measured elsewhere (e.g.
     * by a NoisePaired campaign): @p within holds the per-repetition
     * base/treat ratios at the home setup, @p between one ratio per
     * peer setup.  analyze() is exactly "measure, then aggregate" —
     * both entry points share this math.
     */
    VarianceReport aggregate(const ExperimentSpec &spec,
                             const std::vector<double> &within,
                             const std::vector<double> &between) const;

  private:
    unsigned reps_;
    std::uint64_t noiseSeed_;
    double confidence_;
};

} // namespace mbias::core

#endif // MBIAS_CORE_VARIANCE_HH
