#include "stats/anova2.hh"

#include <limits>

#include "base/logging.hh"
#include "stats/distributions.hh"

namespace mbias::stats
{

TwoWayAnovaResult
twoWayAnova(const std::vector<std::vector<Sample>> &cells)
{
    const std::size_t na = cells.size();
    mbias_assert(na >= 2, "two-way ANOVA needs >= 2 levels of factor A");
    const std::size_t nb = cells[0].size();
    mbias_assert(nb >= 2, "two-way ANOVA needs >= 2 levels of factor B");
    const std::size_t reps = cells[0][0].count();
    mbias_assert(reps >= 2, "two-way ANOVA needs >= 2 replicates/cell");
    for (const auto &row : cells) {
        mbias_assert(row.size() == nb, "ragged cell matrix");
        for (const auto &c : row)
            mbias_assert(c.count() == reps, "unbalanced cell design");
    }

    const double n_total = double(na * nb * reps);
    double grand_sum = 0.0;
    for (const auto &row : cells)
        for (const auto &c : row)
            grand_sum += c.sum();
    const double grand_mean = grand_sum / n_total;

    // Marginal means.
    std::vector<double> mean_a(na, 0.0), mean_b(nb, 0.0);
    for (std::size_t a = 0; a < na; ++a) {
        for (std::size_t b = 0; b < nb; ++b) {
            mean_a[a] += cells[a][b].sum();
            mean_b[b] += cells[a][b].sum();
        }
    }
    for (auto &m : mean_a)
        m /= double(nb * reps);
    for (auto &m : mean_b)
        m /= double(na * reps);

    TwoWayAnovaResult r;
    for (std::size_t a = 0; a < na; ++a)
        r.ssA += double(nb * reps) * (mean_a[a] - grand_mean) *
                 (mean_a[a] - grand_mean);
    for (std::size_t b = 0; b < nb; ++b)
        r.ssB += double(na * reps) * (mean_b[b] - grand_mean) *
                 (mean_b[b] - grand_mean);
    for (std::size_t a = 0; a < na; ++a) {
        for (std::size_t b = 0; b < nb; ++b) {
            const double cell_mean = cells[a][b].mean();
            const double inter = cell_mean - mean_a[a] - mean_b[b] +
                                 grand_mean;
            r.ssAB += double(reps) * inter * inter;
            for (double v : cells[a][b].values())
                r.ssWithin += (v - cell_mean) * (v - cell_mean);
        }
    }

    r.dfA = double(na - 1);
    r.dfB = double(nb - 1);
    r.dfAB = double((na - 1) * (nb - 1));
    r.dfWithin = double(na * nb * (reps - 1));

    const double ms_within = r.ssWithin / r.dfWithin;
    auto ftest = [&](double ss, double df, double &f, double &p) {
        if (ms_within == 0.0) {
            f = ss > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
            p = ss > 0.0 ? 0.0 : 1.0;
            return;
        }
        f = (ss / df) / ms_within;
        p = 1.0 - fCdf(f, df, r.dfWithin);
    };
    ftest(r.ssA, r.dfA, r.fA, r.pA);
    ftest(r.ssB, r.dfB, r.fB, r.pB);
    ftest(r.ssAB, r.dfAB, r.fAB, r.pAB);
    return r;
}

} // namespace mbias::stats
