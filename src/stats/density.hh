#ifndef MBIAS_STATS_DENSITY_HH
#define MBIAS_STATS_DENSITY_HH

#include <string>
#include <vector>

#include "stats/sample.hh"

namespace mbias::stats
{

/**
 * Gaussian kernel density estimate over a sample, used to print
 * violin-plot style summaries of cycle-count distributions (the
 * paper's Figure-1-style plots) without a graphics dependency.
 */
class KernelDensity
{
  public:
    /**
     * Builds the estimate.  @p bandwidth <= 0 selects Silverman's
     * rule-of-thumb bandwidth.
     */
    explicit KernelDensity(const Sample &s, double bandwidth = 0.0);

    /** Density estimate at @p x. */
    double at(double x) const;

    /** The bandwidth in use. */
    double bandwidth() const { return bandwidth_; }

    /**
     * Evaluates the density at @p points evenly spaced values spanning
     * [min - 2h, max + 2h]; returns (x, density) pairs.
     */
    std::vector<std::pair<double, double>> grid(int points = 40) const;

  private:
    std::vector<double> data_;
    double bandwidth_;
};

/**
 * Quantile summary of a distribution for text rendering: a violin
 * reduced to min / p25 / median / p75 / max plus a sparkline-style
 * density strip.
 */
struct ViolinSummary
{
    double min = 0.0;
    double p25 = 0.0;
    double median = 0.0;
    double p75 = 0.0;
    double max = 0.0;

    /** Builds the summary from a sample. */
    static ViolinSummary of(const Sample &s);

    /**
     * ASCII strip (e.g. " .:|#|:. ") whose glyph heights follow the
     * density across @p width bins between min and max.
     */
    std::string strip(const Sample &s, int width = 24) const;
};

} // namespace mbias::stats

#endif // MBIAS_STATS_DENSITY_HH
