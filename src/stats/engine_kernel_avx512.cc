/**
 * @file
 * AVX-512 block kernel for the bootstrap engine: 8 resample lanes per
 * vector × 4 interleaved groups = 32 resamples per pass over the
 * sample.  This TU is always part of the build; on x86-64 it is
 * compiled with -mavx512f -mavx512dq (see src/stats/CMakeLists.txt)
 * and dispatched at runtime via cpuid, elsewhere it degrades to a
 * stub that reports the kernel unavailable.
 *
 * Bitwise equivalence with the scalar path rests on three facts:
 *
 *  - each lane runs the exact xoshiro256** step sequence of the
 *    scalar Rng (the x5 and x9 multiplies are shift+add, the state
 *    xors are fused with vpternlogq — different instructions,
 *    identical 64-bit integer results);
 *  - the index draw is `((next() >> 32) * n) >> 32`, integer exact in
 *    both forms (Rng::nextIndex documents the contract);
 *  - the Neumaier update needs "the larger-magnitude addend first",
 *    computed here with vrangepd (abs-max/abs-min selection), which
 *    agrees with the scalar `abs(sum) >= abs(x)` branch for every
 *    input including ties and signed zeros — double addition is
 *    commutative, so picking either operand of an equal-magnitude
 *    pair yields the same sum and the same residual.
 *
 * There is no FMA contraction hazard: the loop performs only add,
 * subtract, gather, and one final divide.
 */
#include "stats/engine.hh"

#include "base/seeding.hh"

#if defined(__x86_64__) && defined(__AVX512F__) && defined(__AVX512DQ__)
#define MBIAS_AVX512_KERNEL 1
#include <immintrin.h>
#else
#define MBIAS_AVX512_KERNEL 0
#endif

#include "base/logging.hh"

namespace mbias::stats::detail
{

#if MBIAS_AVX512_KERNEL

namespace
{

/** Interleaved lane groups: 4 × 8 lanes hides the gather latency
 *  behind independent RNG/sum chains (measured best of G ∈ {2,3,4}). */
constexpr int kGroups = 4;
constexpr int kBlock = 8 * kGroups;

} // namespace

bool
avx512BootstrapSupported()
{
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq");
}

void
avx512BootstrapMeans(const double *data, std::size_t n,
                     std::uint64_t seed, int r0, int r1, double *means)
{
    const __m512i vn = _mm512_set1_epi64((long long)n);
    int r = r0;
    for (; r + kBlock <= r1; r += kBlock) {
        // Transpose 32 freshly seeded scalar generators into lanes.
        alignas(64) std::uint64_t st[kGroups][4][8];
        for (int k = 0; k < kBlock; ++k) {
            const Rng rng = streamRng(seed, std::uint64_t(r + k));
            for (unsigned w = 0; w < 4; ++w)
                st[k / 8][w][k % 8] = rng.stateWord(w);
        }
        __m512i s0[kGroups], s1[kGroups], s2[kGroups], s3[kGroups];
        __m512d sum[kGroups], comp[kGroups];
        for (int g = 0; g < kGroups; ++g) {
            s0[g] = _mm512_load_si512(st[g][0]);
            s1[g] = _mm512_load_si512(st[g][1]);
            s2[g] = _mm512_load_si512(st[g][2]);
            s3[g] = _mm512_load_si512(st[g][3]);
            sum[g] = _mm512_setzero_pd();
            comp[g] = _mm512_setzero_pd();
        }
        for (std::size_t i = 0; i < n; ++i) {
            __m512d x[kGroups];
            for (int g = 0; g < kGroups; ++g) {
                // xoshiro256** next: result = rotl(s1 * 5, 7) * 9.
                __m512i r5 =
                    _mm512_add_epi64(s1[g], _mm512_slli_epi64(s1[g], 2));
                __m512i rr = _mm512_rol_epi64(r5, 7);
                __m512i res =
                    _mm512_add_epi64(rr, _mm512_slli_epi64(rr, 3));
                __m512i t = _mm512_slli_epi64(s1[g], 17);
                // State update; 0x96 = three-way XOR.
                __m512i ns1 = _mm512_ternarylogic_epi64(s1[g], s2[g],
                                                        s0[g], 0x96);
                __m512i ns0 = _mm512_ternarylogic_epi64(s0[g], s3[g],
                                                        s1[g], 0x96);
                __m512i ns3 = _mm512_rol_epi64(
                    _mm512_xor_si512(s3[g], s1[g]), 45);
                s2[g] = _mm512_ternarylogic_epi64(s2[g], s0[g], t, 0x96);
                s1[g] = ns1;
                s0[g] = ns0;
                s3[g] = ns3;
                // idx = (hi32(res) * n) >> 32  — Rng::nextIndex.
                __m512i idx = _mm512_srli_epi64(
                    _mm512_mul_epu32(_mm512_srli_epi64(res, 32), vn), 32);
                x[g] = _mm512_i64gather_pd(idx, data, 8);
            }
            for (int g = 0; g < kGroups; ++g) {
                // Neumaier: vrangepd imm 0x7/0x6 select the
                // larger/smaller-magnitude operand.
                __m512d tt = _mm512_add_pd(sum[g], x[g]);
                __m512d big = _mm512_range_pd(sum[g], x[g], 0x7);
                __m512d small = _mm512_range_pd(sum[g], x[g], 0x6);
                comp[g] = _mm512_add_pd(
                    comp[g],
                    _mm512_add_pd(_mm512_sub_pd(big, tt), small));
                sum[g] = tt;
            }
        }
        const __m512d vcount = _mm512_set1_pd(double(n));
        for (int g = 0; g < kGroups; ++g)
            _mm512_storeu_pd(
                &means[(r - r0) + 8 * g],
                _mm512_div_pd(_mm512_add_pd(sum[g], comp[g]), vcount));
    }
    // Partial block: the scalar kernel computes the same bits.
    if (r < r1)
        scalarBootstrapMeans(data, n, seed, r, r1, means + (r - r0));
}

#else // !MBIAS_AVX512_KERNEL

bool
avx512BootstrapSupported()
{
    return false;
}

void
avx512BootstrapMeans(const double *, std::size_t, std::uint64_t, int,
                     int, double *)
{
    mbias_panic("AVX-512 bootstrap kernel not compiled in");
}

#endif // MBIAS_AVX512_KERNEL

} // namespace mbias::stats::detail
