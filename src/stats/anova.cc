#include "stats/anova.hh"

#include <limits>

#include "base/logging.hh"
#include "stats/distributions.hh"

namespace mbias::stats
{

AnovaResult
oneWayAnova(const std::vector<Sample> &groups)
{
    mbias_assert(groups.size() >= 2, "ANOVA needs >= 2 groups");
    std::size_t total_n = 0;
    double grand_sum = 0.0;
    for (const auto &g : groups) {
        mbias_assert(!g.empty(), "ANOVA group is empty");
        total_n += g.count();
        grand_sum += g.sum();
    }
    const double grand_mean = grand_sum / double(total_n);

    AnovaResult r;
    for (const auto &g : groups) {
        const double gm = g.mean();
        r.ssBetween += double(g.count()) * (gm - grand_mean) * (gm - grand_mean);
        for (double v : g.values())
            r.ssWithin += (v - gm) * (v - gm);
    }
    r.dfBetween = double(groups.size() - 1);
    r.dfWithin = double(total_n - groups.size());
    mbias_assert(r.dfWithin >= 1.0, "ANOVA needs residual df >= 1");

    const double ms_between = r.ssBetween / r.dfBetween;
    const double ms_within = r.ssWithin / r.dfWithin;
    const double ss_total = r.ssBetween + r.ssWithin;
    r.etaSquared = ss_total > 0.0 ? r.ssBetween / ss_total : 0.0;

    if (ms_within == 0.0) {
        // All within-group variance is zero: either the groups are
        // identical (no effect) or they differ exactly (certain effect).
        r.fStatistic = r.ssBetween > 0.0
                           ? std::numeric_limits<double>::infinity()
                           : 0.0;
        r.pValue = r.ssBetween > 0.0 ? 0.0 : 1.0;
        return r;
    }
    r.fStatistic = ms_between / ms_within;
    r.pValue = 1.0 - fCdf(r.fStatistic, r.dfBetween, r.dfWithin);
    return r;
}

} // namespace mbias::stats
