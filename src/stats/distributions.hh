#ifndef MBIAS_STATS_DISTRIBUTIONS_HH
#define MBIAS_STATS_DISTRIBUTIONS_HH

namespace mbias::stats
{

/**
 * Regularized incomplete beta function I_x(a, b), computed with the
 * continued-fraction expansion (Numerical Recipes style).  Domain:
 * a > 0, b > 0, 0 <= x <= 1.
 */
double regularizedIncompleteBeta(double a, double b, double x);

/** CDF of the standard normal distribution. */
double normalCdf(double z);

/** Inverse CDF (quantile) of the standard normal distribution. */
double normalQuantile(double p);

/** CDF of Student's t distribution with @p df degrees of freedom. */
double studentTCdf(double t, double df);

/**
 * Two-sided critical value t* such that P(|T| <= t*) = @p confidence for
 * Student's t with @p df degrees of freedom (e.g. confidence = 0.95).
 */
double studentTCritical(double confidence, double df);

/** CDF of the F distribution with (d1, d2) degrees of freedom. */
double fCdf(double f, double d1, double d2);

/** P(X >= k) for X ~ Binomial(n, p); exact summation. */
double binomialTailAtLeast(int k, int n, double p);

} // namespace mbias::stats

#endif // MBIAS_STATS_DISTRIBUTIONS_HH
