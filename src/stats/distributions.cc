#include "stats/distributions.hh"

#include <cmath>
#include <limits>

#include "base/logging.hh"

namespace mbias::stats
{

namespace
{

/** Continued fraction for the incomplete beta function. */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int max_iter = 300;
    constexpr double eps = 3.0e-14;
    constexpr double fpmin = 1.0e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < fpmin)
        d = fpmin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_iter; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < eps)
            break;
    }
    return h;
}

} // namespace

double
regularizedIncompleteBeta(double a, double b, double x)
{
    mbias_assert(a > 0.0 && b > 0.0, "beta parameters must be positive");
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;

    const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                            std::lgamma(b) + a * std::log(x) +
                            b * std::log(1.0 - x);
    const double front = std::exp(ln_front);
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
normalQuantile(double p)
{
    mbias_assert(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
    // Acklam's rational approximation, refined with one Newton step.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double plow = 0.02425;
    double x = 0.0;
    if (p < plow) {
        double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - plow) {
        double q = p - 0.5;
        double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    // One Newton-Raphson refinement.
    double e = normalCdf(x) - p;
    double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
    return x - u / (1.0 + x * u / 2.0);
}

double
studentTCdf(double t, double df)
{
    mbias_assert(df > 0.0, "degrees of freedom must be positive");
    const double x = df / (df + t * t);
    const double p = 0.5 * regularizedIncompleteBeta(df / 2.0, 0.5, x);
    return t >= 0.0 ? 1.0 - p : p;
}

double
studentTCritical(double confidence, double df)
{
    mbias_assert(confidence > 0.0 && confidence < 1.0,
                 "confidence must be in (0,1)");
    const double target = 0.5 + confidence / 2.0;
    // Bisection on the CDF; monotone, so this always converges.
    double lo = 0.0, hi = 1.0;
    while (studentTCdf(hi, df) < target)
        hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        double mid = 0.5 * (lo + hi);
        if (studentTCdf(mid, df) < target)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12)
            break;
    }
    return 0.5 * (lo + hi);
}

double
fCdf(double f, double d1, double d2)
{
    mbias_assert(d1 > 0.0 && d2 > 0.0, "degrees of freedom must be positive");
    if (f <= 0.0)
        return 0.0;
    const double x = d1 * f / (d1 * f + d2);
    return regularizedIncompleteBeta(d1 / 2.0, d2 / 2.0, x);
}

double
binomialTailAtLeast(int k, int n, double p)
{
    mbias_assert(n >= 0 && k >= 0, "binomial parameters must be nonnegative");
    if (k > n)
        return 0.0;
    double tail = 0.0;
    for (int i = k; i <= n; ++i) {
        double ln = std::lgamma(n + 1.0) - std::lgamma(i + 1.0) -
                    std::lgamma(n - i + 1.0) + i * std::log(p) +
                    (n - i) * std::log1p(-p);
        tail += std::exp(ln);
    }
    return std::min(1.0, tail);
}

} // namespace mbias::stats
