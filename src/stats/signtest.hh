#ifndef MBIAS_STATS_SIGNTEST_HH
#define MBIAS_STATS_SIGNTEST_HH

#include <vector>

namespace mbias::stats
{

/** Result of a paired sign test. */
struct SignTestResult
{
    int positive = 0;    ///< pairs where a > b
    int negative = 0;    ///< pairs where a < b
    int ties = 0;        ///< pairs where a == b (excluded from the test)
    double pValue = 1.0; ///< two-sided exact binomial p-value

    bool significant() const { return pValue < 0.05; }
};

/**
 * Exact two-sided sign test over paired observations.  The bias toolkit
 * uses it to ask "does the treatment win more often than chance across
 * randomized setups?" without assuming normality of the differences.
 */
SignTestResult signTest(const std::vector<double> &a,
                        const std::vector<double> &b);

} // namespace mbias::stats

#endif // MBIAS_STATS_SIGNTEST_HH
