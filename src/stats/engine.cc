#include "stats/engine.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "base/logging.hh"
#include "base/seeding.hh"
#include "obs/trace.hh"
#include "parallel/pool.hh"
#include "stats/distributions.hh"

namespace mbias::stats
{

namespace
{

/** Resample chunk granularity.  A multiple of the SIMD block width
 *  (32 resamples) so only the final chunk takes the scalar tail, and
 *  coarse enough that chunk dispatch is noise next to the O(chunk * n)
 *  work inside.  Chunk boundaries cannot affect results: every
 *  resample mean is a pure function of (seed, stream index, data). */
constexpr int kChunkResamples = 1024;

/** MBIAS_STATS_SERIAL=1 pins every engine to the serial reference
 *  path (re-read per engine, so one process can compare both). */
bool
serialForced()
{
    const char *e = std::getenv("MBIAS_STATS_SERIAL");
    return e && *e && !(e[0] == '0' && e[1] == '\0');
}

/**
 * Type-7 linear-interpolated quantile via selection instead of a full
 * sort: nth_element places the lo-th and (lo+1)-th order statistics,
 * which is all the interpolation reads.  Order statistics are a pure
 * function of the multiset, so this returns bitwise the same value a
 * sorted scan would (the formula below is Sample::quantile's).
 */
double
quantileSelect(std::vector<double> &s, double q)
{
    if (s.size() == 1)
        return s.front();
    const double pos = q * double(s.size() - 1);
    const std::size_t lo = std::size_t(pos);
    const std::size_t hi = std::min(lo + 1, s.size() - 1);
    const double frac = pos - double(lo);
    std::nth_element(s.begin(), s.begin() + std::ptrdiff_t(lo), s.end());
    const double vlo = s[lo];
    std::nth_element(s.begin() + std::ptrdiff_t(lo),
                     s.begin() + std::ptrdiff_t(hi), s.end());
    return vlo * (1.0 - frac) + s[hi] * frac;
}

/** Same formula over a fully sorted vector (serial reference). */
double
quantileSorted(const std::vector<double> &s, double q)
{
    if (s.size() == 1)
        return s.front();
    const double pos = q * double(s.size() - 1);
    const std::size_t lo = std::size_t(pos);
    const std::size_t hi = std::min(lo + 1, s.size() - 1);
    const double frac = pos - double(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
}

} // namespace

double
compensatedSum(const double *data, std::size_t n)
{
    double sum = 0.0, comp = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double x = data[i];
        const double t = sum + x;
        if (std::abs(sum) >= std::abs(x))
            comp += (sum - t) + x;
        else
            comp += (x - t) + sum;
        sum = t;
    }
    return sum + comp;
}

double
compensatedMean(const double *data, std::size_t n)
{
    mbias_assert(n > 0, "mean of empty array");
    return compensatedSum(data, n) / double(n);
}

namespace detail
{

void
scalarBootstrapMeans(const double *data, std::size_t n,
                     std::uint64_t seed, int r0, int r1, double *means)
{
    for (int r = r0; r < r1; ++r) {
        Rng rng = streamRng(seed, std::uint64_t(r));
        double sum = 0.0, comp = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double x = data[rng.nextIndex(n)];
            const double t = sum + x;
            if (std::abs(sum) >= std::abs(x))
                comp += (sum - t) + x;
            else
                comp += (x - t) + sum;
            sum = t;
        }
        means[r - r0] = (sum + comp) / double(n);
    }
}

} // namespace detail

Engine::Engine(EngineOptions opts) : opts_(opts)
{
    serial_ = opts_.forceSerial || !MBIAS_STATS_PARALLEL_ENABLED ||
              serialForced();
    if (opts_.metrics) {
        bootstrapCalls_ = &opts_.metrics->counter("stats.bootstrap_calls");
        bootstrapResamples_ =
            &opts_.metrics->counter("stats.bootstrap_resamples");
        bootstrapUs_ = &opts_.metrics->histogram("stats.bootstrap_us");
        anovaCalls_ = &opts_.metrics->counter("stats.anova_calls");
        anovaCells_ = &opts_.metrics->counter("stats.anova_cells");
    }
}

bool
Engine::simdAvailable()
{
    return detail::avx512BootstrapSupported();
}

std::vector<double>
Engine::bootstrapMeans(const std::vector<double> &data, std::uint64_t seed,
                       int resamples) const
{
    mbias_assert(!data.empty(), "bootstrap of empty sample");
    mbias_assert(data.size() <= 0x100000000ULL,
                 "bootstrap sample too large for nextIndex draws");
    mbias_assert(resamples >= 1, "bootstrapMeans needs resamples >= 1");
    std::vector<double> means(static_cast<std::size_t>(resamples));

    if (serial_) {
        // Serial reference: one resample at a time, every draw an
        // out-of-line library call.  This is the path the fast one
        // must match bitwise, so keep it boring.
        for (int r = 0; r < resamples; ++r) {
            Rng rng = streamRng(seed, std::uint64_t(r));
            double sum = 0.0, comp = 0.0;
            for (std::size_t i = 0; i < data.size(); ++i) {
                const double x = data[rng.nextIndex(data.size())];
                const double t = sum + x;
                if (std::abs(sum) >= std::abs(x))
                    comp += (sum - t) + x;
                else
                    comp += (x - t) + sum;
                sum = t;
            }
            means[std::size_t(r)] = (sum + comp) / double(data.size());
        }
        return means;
    }

    const bool simd = !opts_.forceScalar && detail::avx512BootstrapSupported();
    const int chunks =
        (resamples + kChunkResamples - 1) / kChunkResamples;
    parallel::ThreadPool pool(opts_.jobs, nullptr);
    pool.parallelFor(std::size_t(chunks), [&](std::size_t c, unsigned) {
        const int r0 = int(c) * kChunkResamples;
        const int r1 = std::min(resamples, r0 + kChunkResamples);
        if (simd)
            detail::avx512BootstrapMeans(data.data(), data.size(), seed,
                                         r0, r1, means.data() + r0);
        else
            detail::scalarBootstrapMeans(data.data(), data.size(), seed,
                                         r0, r1, means.data() + r0);
    });
    return means;
}

ConfidenceInterval
Engine::bootstrapInterval(const std::vector<double> &data,
                          std::uint64_t seed, int resamples,
                          double level) const
{
    mbias_assert(resamples >= 10, "too few bootstrap resamples");
    mbias_assert(level > 0.0 && level < 1.0,
                 "confidence level must be in (0, 1)");
    obs::ScopedSpan span("bootstrap", "stats");
    const auto start = std::chrono::steady_clock::now();

    std::vector<double> means = bootstrapMeans(data, seed, resamples);
    const double alpha = (1.0 - level) / 2.0;
    ConfidenceInterval ci;
    ci.estimate = compensatedMean(data.data(), data.size());
    ci.level = level;
    if (serial_) {
        std::sort(means.begin(), means.end());
        ci.lower = quantileSorted(means, alpha);
        ci.upper = quantileSorted(means, 1.0 - alpha);
    } else {
        ci.lower = quantileSelect(means, alpha);
        ci.upper = quantileSelect(means, 1.0 - alpha);
    }

    if (bootstrapCalls_) {
        bootstrapCalls_->add();
        bootstrapResamples_->add(std::uint64_t(resamples));
        bootstrapUs_->record(std::uint64_t(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
    }
    return ci;
}

TwoWayAnovaResult
Engine::twoWayAnova(const std::vector<std::vector<Sample>> &cells) const
{
    const std::size_t na = cells.size();
    mbias_assert(na >= 2, "two-way ANOVA needs >= 2 levels of factor A");
    const std::size_t nb = cells[0].size();
    mbias_assert(nb >= 2, "two-way ANOVA needs >= 2 levels of factor B");
    const std::size_t reps = cells[0][0].count();
    mbias_assert(reps >= 2, "two-way ANOVA needs >= 2 replicates/cell");
    for (const auto &row : cells) {
        mbias_assert(row.size() == nb, "ragged cell matrix");
        for (const auto &c : row)
            mbias_assert(c.count() == reps, "unbalanced cell design");
    }
    obs::ScopedSpan span("anova", "stats");

    // Stage 1: per-cell partials — compensated sum and, once the cell
    // mean is known, the within-cell sum of squares.  Each partial is
    // a pure function of one cell, and the reductions below combine
    // them in fixed (a-major) cell order, so the result is bitwise
    // identical at any jobs setting.
    const std::size_t ncells = na * nb;
    std::vector<double> cellSum(ncells), cellSq(ncells);
    parallel::ThreadPool pool(serial_ ? 1 : opts_.jobs, nullptr);
    pool.parallelFor(ncells, [&](std::size_t cidx, unsigned) {
        const auto &vals = cells[cidx / nb][cidx % nb].values();
        const double sum = compensatedSum(vals.data(), vals.size());
        const double mean = sum / double(vals.size());
        double acc = 0.0, comp = 0.0;
        for (double v : vals) {
            const double d = (v - mean) * (v - mean);
            const double t = acc + d;
            if (std::abs(acc) >= std::abs(d))
                comp += (acc - t) + d;
            else
                comp += (d - t) + acc;
            acc = t;
        }
        cellSum[cidx] = sum;
        cellSq[cidx] = acc + comp;
    });

    // Stage 2: serial combination in fixed order (cheap: O(cells)).
    const double n_total = double(na * nb * reps);
    double grand_sum = 0.0;
    for (std::size_t i = 0; i < ncells; ++i)
        grand_sum += cellSum[i];
    const double grand_mean = grand_sum / n_total;

    std::vector<double> mean_a(na, 0.0), mean_b(nb, 0.0);
    for (std::size_t a = 0; a < na; ++a)
        for (std::size_t b = 0; b < nb; ++b) {
            mean_a[a] += cellSum[a * nb + b];
            mean_b[b] += cellSum[a * nb + b];
        }
    for (auto &m : mean_a)
        m /= double(nb * reps);
    for (auto &m : mean_b)
        m /= double(na * reps);

    TwoWayAnovaResult r;
    for (std::size_t a = 0; a < na; ++a)
        r.ssA += double(nb * reps) * (mean_a[a] - grand_mean) *
                 (mean_a[a] - grand_mean);
    for (std::size_t b = 0; b < nb; ++b)
        r.ssB += double(na * reps) * (mean_b[b] - grand_mean) *
                 (mean_b[b] - grand_mean);
    for (std::size_t a = 0; a < na; ++a)
        for (std::size_t b = 0; b < nb; ++b) {
            const double cell_mean =
                cellSum[a * nb + b] / double(reps);
            const double inter =
                cell_mean - mean_a[a] - mean_b[b] + grand_mean;
            r.ssAB += double(reps) * inter * inter;
            r.ssWithin += cellSq[a * nb + b];
        }

    r.dfA = double(na - 1);
    r.dfB = double(nb - 1);
    r.dfAB = double((na - 1) * (nb - 1));
    r.dfWithin = double(na * nb * (reps - 1));

    const double ms_within = r.ssWithin / r.dfWithin;
    auto ftest = [&](double ss, double df, double &f, double &p) {
        if (ms_within == 0.0) {
            f = ss > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
            p = ss > 0.0 ? 0.0 : 1.0;
            return;
        }
        f = (ss / df) / ms_within;
        p = 1.0 - fCdf(f, df, r.dfWithin);
    };
    ftest(r.ssA, r.dfA, r.fA, r.pA);
    ftest(r.ssB, r.dfB, r.fB, r.pB);
    ftest(r.ssAB, r.dfAB, r.fAB, r.pAB);

    if (anovaCalls_) {
        anovaCalls_->add();
        anovaCells_->add(ncells);
    }
    return r;
}

} // namespace mbias::stats
