#ifndef MBIAS_STATS_REGRESSION_HH
#define MBIAS_STATS_REGRESSION_HH

#include <vector>

namespace mbias::stats
{

/** Result of an ordinary-least-squares fit y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    double r2 = 0.0;          ///< coefficient of determination
    double slopeStderr = 0.0; ///< standard error of the slope

    /** Predicted value at @p x. */
    double predict(double x) const { return slope * x + intercept; }
};

/** Ordinary least squares over paired observations; needs n >= 3. */
LinearFit linearRegression(const std::vector<double> &x,
                           const std::vector<double> &y);

/** Pearson product-moment correlation coefficient; needs n >= 2. */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/**
 * Spearman rank correlation (Pearson over average ranks, so ties are
 * handled); needs n >= 2.  The causal analyzer prefers it because
 * counter-vs-cycles relations are often monotone but not linear.
 */
double spearman(const std::vector<double> &x, const std::vector<double> &y);

} // namespace mbias::stats

#endif // MBIAS_STATS_REGRESSION_HH
