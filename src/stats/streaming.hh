#ifndef MBIAS_STATS_STREAMING_HH
#define MBIAS_STATS_STREAMING_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mbias::stats
{

/**
 * Single-pass summary statistics: Welford moments, a Neumaier
 * compensated total, min/max, and (optionally) quantile support via a
 * bounded deterministic reservoir.
 *
 * Sample keeps every observation because bootstrap resampling and
 * density estimation need the raw data; aggregation paths that only
 * report moments and the odd quantile do not, and on campaign-scale
 * stores the difference is materializing hundreds of thousands of
 * doubles versus O(1) state.  StreamingSample is the O(1)-state
 * counterpart: numerically stable (Welford's update never forms the
 * catastrophic sum-of-squares difference), mergeable across chunks
 * (Chan's parallel update), and deterministic — the reservoir is
 * driven by a fixed-seed generator keyed only by how many values have
 * been seen, never by wall clock or address.
 *
 * With quantile_capacity = 0 (the default) only moments are tracked.
 * With a capacity K, quantiles are *exact* while count() <= K and an
 * unbiased reservoir approximation afterwards; quantilesExact() says
 * which one a caller is getting.
 */
class StreamingSample
{
  public:
    explicit StreamingSample(std::size_t quantile_capacity = 0);

    /** Adds one observation. */
    void add(double x);

    /** Folds @p other in as if its values had been added here (Chan's
     *  pairwise moment combination; moments match the sequential
     *  result to rounding, not bitwise). */
    void merge(const StreamingSample &other);

    std::size_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Arithmetic mean; requires at least one observation. */
    double mean() const;

    /** Neumaier-compensated sum of all observations. */
    double sum() const;

    /** Unbiased sample variance (n-1 denominator); needs n >= 2. */
    double variance() const;

    /** Unbiased sample standard deviation; needs n >= 2. */
    double stddev() const;

    /** Standard error of the mean; needs n >= 2. */
    double stderror() const;

    /** Smallest observation. */
    double min() const;

    /** Largest observation. */
    double max() const;

    /** True while quantile() is computed from every observation (count
     *  has not outgrown the reservoir). */
    bool quantilesExact() const;

    /**
     * Linear-interpolated quantile over the retained values (type-7,
     * matching Sample::quantile); requires a nonzero capacity and at
     * least one observation.  Exact iff quantilesExact().
     */
    double quantile(double q) const;

    /** Median (0.5 quantile); same retention caveats as quantile(). */
    double median() const;

    /** One-line human-readable summary. */
    std::string summary() const;

  private:
    std::size_t capacity_;
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double sumComp_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t reservoirState_; ///< SplitMix64 state for Algorithm R
    std::vector<double> reservoir_;
    mutable std::vector<double> scratch_; ///< sorted copy for quantiles
    mutable bool scratchValid_ = false;
};

} // namespace mbias::stats

#endif // MBIAS_STATS_STREAMING_HH
