#ifndef MBIAS_STATS_CI_HH
#define MBIAS_STATS_CI_HH

#include <string>

#include "base/random.hh"
#include "stats/sample.hh"

namespace mbias::stats
{

/** A two-sided confidence interval around a point estimate. */
struct ConfidenceInterval
{
    double estimate = 0.0; ///< point estimate (mean or median)
    double lower = 0.0;    ///< lower bound
    double upper = 0.0;    ///< upper bound
    double level = 0.95;   ///< confidence level, e.g. 0.95

    /** Half the interval width. */
    double halfWidth() const { return (upper - lower) / 2.0; }

    /** True iff @p v lies inside the interval (inclusive). */
    bool contains(double v) const { return v >= lower && v <= upper; }

    /** True iff the whole interval lies strictly above @p v. */
    bool entirelyAbove(double v) const { return lower > v; }

    /** True iff the whole interval lies strictly below @p v. */
    bool entirelyBelow(double v) const { return upper < v; }

    /** Renders as "estimate [lower, upper]". */
    std::string str() const;
};

/**
 * Student-t confidence interval for the mean of @p s at @p level.
 * Needs at least two observations.
 */
ConfidenceInterval tInterval(const Sample &s, double level = 0.95);

/**
 * Student-t confidence interval from precomputed moments — the same
 * arithmetic as tInterval(Sample), callable from streaming paths that
 * never materialize the observations (see stats::StreamingSample).
 * @p n is the observation count; needs n >= 2.
 */
ConfidenceInterval tIntervalMoments(double mean, double stderror,
                                    std::size_t n, double level = 0.95);

/**
 * Percentile-bootstrap confidence interval for the mean of @p s.
 * Deterministic given @p rng; @p resamples draws with replacement.
 */
ConfidenceInterval bootstrapInterval(const Sample &s, Rng &rng,
                                     int resamples = 1000,
                                     double level = 0.95);

/**
 * Welch's two-sample t-test: returns the two-sided p-value for the
 * hypothesis that samples @p a and @p b share a mean.
 */
double welchTTestPValue(const Sample &a, const Sample &b);

/**
 * Confidence interval for a ratio of means a/b via the delta method
 * (first-order Taylor expansion), as commonly used for speedups.
 */
ConfidenceInterval ratioInterval(const Sample &numerator,
                                 const Sample &denominator,
                                 double level = 0.95);

} // namespace mbias::stats

#endif // MBIAS_STATS_CI_HH
