#ifndef MBIAS_STATS_SAMPLE_HH
#define MBIAS_STATS_SAMPLE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace mbias::stats
{

/**
 * A collection of scalar observations with summary statistics.
 *
 * Values are retained (not streamed) because the bias toolkit needs
 * quantiles, bootstrap resampling, and density estimates, all of which
 * require the raw data.  Quantile queries sort a lazily maintained
 * copy.
 */
class Sample
{
  public:
    Sample() = default;

    /** Constructs from an existing vector of observations. */
    explicit Sample(std::vector<double> values);

    /** Adds one observation. */
    void add(double v);

    /** Adds all observations of another sample. */
    void addAll(const Sample &other);

    /** Number of observations. */
    std::size_t count() const { return values_.size(); }

    /** True iff no observations have been added. */
    bool empty() const { return values_.empty(); }

    /** The raw observations, in insertion order. */
    const std::vector<double> &values() const { return values_; }

    /** Arithmetic mean; requires at least one observation. */
    double mean() const;

    /** Sum of all observations. */
    double sum() const;

    /** Unbiased sample variance (n-1 denominator); needs n >= 2. */
    double variance() const;

    /** Unbiased sample standard deviation; needs n >= 2. */
    double stddev() const;

    /** Standard error of the mean; needs n >= 2. */
    double stderror() const;

    /** Smallest observation. */
    double min() const;

    /** Largest observation. */
    double max() const;

    /** Median (0.5 quantile). */
    double median() const;

    /**
     * Linear-interpolated quantile, @p q in [0, 1] (type-7, the R and
     * NumPy default).
     */
    double quantile(double q) const;

    /** Geometric mean; all observations must be positive. */
    double geomean() const;

    /** Harmonic mean; all observations must be positive. */
    double harmonicMean() const;

    /** Coefficient of variation (stddev / mean). */
    double cv() const;

    /** max() - min(). */
    double range() const;

    /** One-line human-readable summary. */
    std::string summary() const;

  private:
    const std::vector<double> &sorted() const;

    std::vector<double> values_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;
};

/** Geometric mean of a vector of positive values. */
double geomean(const std::vector<double> &values);

} // namespace mbias::stats

#endif // MBIAS_STATS_SAMPLE_HH
