#ifndef MBIAS_STATS_ANOVA_HH
#define MBIAS_STATS_ANOVA_HH

#include <vector>

#include "stats/sample.hh"

namespace mbias::stats
{

/** Result of a one-way analysis of variance. */
struct AnovaResult
{
    double fStatistic = 0.0;   ///< between/within mean-square ratio
    double pValue = 1.0;       ///< P(F >= fStatistic) under H0
    double dfBetween = 0.0;    ///< k - 1
    double dfWithin = 0.0;     ///< N - k
    double ssBetween = 0.0;    ///< between-group sum of squares
    double ssWithin = 0.0;     ///< within-group sum of squares
    double etaSquared = 0.0;   ///< effect size: ssBetween / ssTotal

    /** True at the conventional 0.05 significance level. */
    bool significant() const { return pValue < 0.05; }
};

/**
 * One-way ANOVA across @p groups (each a Sample of observations under
 * one factor level).  Used by the bias toolkit to test whether an
 * "innocuous" setup factor has a statistically significant effect on
 * the measured outcome.  Requires >= 2 groups and >= 2 total residual
 * degrees of freedom.
 */
AnovaResult oneWayAnova(const std::vector<Sample> &groups);

} // namespace mbias::stats

#endif // MBIAS_STATS_ANOVA_HH
