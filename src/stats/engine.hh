#ifndef MBIAS_STATS_ENGINE_HH
#define MBIAS_STATS_ENGINE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.hh"
#include "stats/anova2.hh"
#include "stats/ci.hh"

namespace mbias::stats
{

/**
 * Neumaier-compensated sum of @p n doubles in index order.  The
 * compensation makes the result far less sensitive to the magnitude
 * spread of the addends than a plain left fold; the fixed order makes
 * it a pure function of the input array, which every engine path
 * below relies on.
 */
double compensatedSum(const double *data, std::size_t n);

inline double
compensatedSum(const std::vector<double> &v)
{
    return compensatedSum(v.data(), v.size());
}

/** compensatedSum / n; requires n > 0. */
double compensatedMean(const double *data, std::size_t n);

/** Options for a stats::Engine.  Plain aggregate; copy freely. */
struct EngineOptions
{
    /** Worker threads for chunked reductions; 0 or 1 means inline. */
    unsigned jobs = 1;

    /** Pin this engine to the serial reference path (same effect as
     *  MBIAS_STATS_SERIAL=1, but per-instance). */
    bool forceSerial = false;

    /** Keep the chunked/parallel structure but use the scalar block
     *  kernel even when the SIMD one is available.  Differential-test
     *  hook: scalar and SIMD blocks must agree bitwise. */
    bool forceScalar = false;

    /** Optional registry for stats.* counters and histograms. */
    obs::Registry *metrics = nullptr;
};

/**
 * Parallel, vectorized analysis engine.
 *
 * The engine mirrors the simulator fast path's discipline: every
 * optimized path must be **bitwise identical** to a plain serial
 * reference, and the equivalence is enforced by tests plus runtime
 * escape hatches, never argued by hand.
 *
 * The determinism contract for the bootstrap (see docs/statistics.md):
 *
 *  - resample r draws from the generator `streamRng(seed, r)` — the
 *    same per-stream derivation PR 1 uses for campaign tasks, so
 *    resamples are independent streams keyed by index;
 *  - each draw is one `Rng::nextIndex(n)` (exactly one generator step,
 *    no rejection loop), so draw d of resample r is a pure function
 *    of (seed, r, d);
 *  - each resample mean is a Neumaier-compensated sum over draws in
 *    order d = 0..n-1, divided by n.
 *
 * Every resample mean is therefore a pure function of (seed, r, data):
 * chunking, thread count, work stealing, and SIMD lane assignment
 * cannot change a single bit.  The percentile step selects order
 * statistics of the means vector, which are likewise schedule
 * independent.
 *
 * Escape hatches: `MBIAS_STATS_SERIAL=1` in the environment pins every
 * engine to the serial reference at runtime; building with
 * `-DMBIAS_STATS_PARALLEL=OFF` compiles the fast path out entirely.
 */
class Engine
{
  public:
    explicit Engine(EngineOptions opts = EngineOptions{});

    /**
     * The R resample means of @p data under the contract above.
     * Requires 0 < data.size() <= 2^32 and resamples >= 1.
     */
    std::vector<double> bootstrapMeans(const std::vector<double> &data,
                                       std::uint64_t seed,
                                       int resamples) const;

    /**
     * Percentile-bootstrap confidence interval for the mean of
     * @p data: estimate is the compensated mean of the data, bounds
     * are type-7 quantiles of the resample means.  Bitwise identical
     * at any jobs setting, with or without SIMD.
     */
    ConfidenceInterval bootstrapInterval(const std::vector<double> &data,
                                         std::uint64_t seed,
                                         int resamples = 1000,
                                         double level = 0.95) const;

    /**
     * Balanced two-way ANOVA with per-cell compensated partial sums
     * reduced in fixed cell order.  Bitwise identical at any jobs
     * setting.  Note: agrees with the legacy stats::twoWayAnova only
     * to rounding (the legacy code associates its sums differently);
     * the engine's own serial and parallel paths agree bitwise.
     */
    TwoWayAnovaResult
    twoWayAnova(const std::vector<std::vector<Sample>> &cells) const;

    /** True when this engine runs the serial reference path (escape
     *  hatch, build switch, or forceSerial). */
    bool usingSerial() const { return serial_; }

    /** True when the vectorized block kernel is compiled in and the
     *  CPU supports it. */
    static bool simdAvailable();

  private:
    EngineOptions opts_;
    bool serial_;
    obs::Counter *bootstrapCalls_ = nullptr;
    obs::Counter *bootstrapResamples_ = nullptr;
    obs::Histogram *bootstrapUs_ = nullptr;
    obs::Counter *anovaCalls_ = nullptr;
    obs::Counter *anovaCells_ = nullptr;
};

namespace detail
{

/** True iff the binary carries the AVX-512 bootstrap kernel and the
 *  running CPU can execute it. */
bool avx512BootstrapSupported();

/**
 * Vectorized block kernel: fills means[0 .. r1-r0) with the resample
 * means for stream indices [r0, r1) under the engine contract.  Only
 * callable when avx512BootstrapSupported().
 */
void avx512BootstrapMeans(const double *data, std::size_t n,
                          std::uint64_t seed, int r0, int r1,
                          double *means);

/** Scalar block kernel with arithmetic identical to the SIMD one (and
 *  to the serial reference); always available. */
void scalarBootstrapMeans(const double *data, std::size_t n,
                          std::uint64_t seed, int r0, int r1,
                          double *means);

} // namespace detail

} // namespace mbias::stats

#endif // MBIAS_STATS_ENGINE_HH
