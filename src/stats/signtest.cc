#include "stats/signtest.hh"

#include <algorithm>

#include "base/logging.hh"
#include "stats/distributions.hh"

namespace mbias::stats
{

SignTestResult
signTest(const std::vector<double> &a, const std::vector<double> &b)
{
    mbias_assert(a.size() == b.size(), "sign test needs paired data");
    SignTestResult r;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] > b[i])
            ++r.positive;
        else if (a[i] < b[i])
            ++r.negative;
        else
            ++r.ties;
    }
    const int n = r.positive + r.negative;
    if (n == 0) {
        r.pValue = 1.0;
        return r;
    }
    const int k = std::max(r.positive, r.negative);
    r.pValue = std::min(1.0, 2.0 * binomialTailAtLeast(k, n, 0.5));
    return r;
}

} // namespace mbias::stats
