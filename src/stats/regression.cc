#include "stats/regression.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/logging.hh"

namespace mbias::stats
{

namespace
{

/** Average ranks (1-based) with ties sharing their mean rank. */
std::vector<double>
ranks(const std::vector<double> &v)
{
    const std::size_t n = v.size();
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(n);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && v[idx[j + 1]] == v[idx[i]])
            ++j;
        const double avg = (double(i) + double(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            r[idx[k]] = avg;
        i = j + 1;
    }
    return r;
}

} // namespace

LinearFit
linearRegression(const std::vector<double> &x, const std::vector<double> &y)
{
    mbias_assert(x.size() == y.size(), "regression needs paired data");
    const std::size_t n = x.size();
    mbias_assert(n >= 3, "regression needs n >= 3");

    const double mx = std::accumulate(x.begin(), x.end(), 0.0) / double(n);
    const double my = std::accumulate(y.begin(), y.end(), 0.0) / double(n);
    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sxx += (x[i] - mx) * (x[i] - mx);
        sxy += (x[i] - mx) * (y[i] - my);
        syy += (y[i] - my) * (y[i] - my);
    }
    mbias_assert(sxx > 0.0, "regression requires x variation");

    LinearFit fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    double ss_res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double e = y[i] - fit.predict(x[i]);
        ss_res += e * e;
    }
    fit.r2 = syy > 0.0 ? 1.0 - ss_res / syy : 1.0;
    fit.slopeStderr = std::sqrt(ss_res / double(n - 2) / sxx);
    return fit;
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    mbias_assert(x.size() == y.size(), "correlation needs paired data");
    const std::size_t n = x.size();
    mbias_assert(n >= 2, "correlation needs n >= 2");
    const double mx = std::accumulate(x.begin(), x.end(), 0.0) / double(n);
    const double my = std::accumulate(y.begin(), y.end(), 0.0) / double(n);
    double sxx = 0.0, syy = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
        sxy += (x[i] - mx) * (y[i] - my);
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0; // a constant series carries no correlation signal
    return sxy / std::sqrt(sxx * syy);
}

double
spearman(const std::vector<double> &x, const std::vector<double> &y)
{
    return pearson(ranks(x), ranks(y));
}

} // namespace mbias::stats
