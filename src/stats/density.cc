#include "stats/density.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace mbias::stats
{

KernelDensity::KernelDensity(const Sample &s, double bandwidth)
    : data_(s.values())
{
    mbias_assert(!data_.empty(), "density of empty sample");
    if (bandwidth > 0.0) {
        bandwidth_ = bandwidth;
    } else if (s.count() >= 2 && s.stddev() > 0.0) {
        // Silverman's rule of thumb.
        bandwidth_ = 1.06 * s.stddev() *
                     std::pow(double(s.count()), -0.2);
    } else {
        // Degenerate sample: fall back to a tiny positive width.
        const double scale = std::fabs(data_.front());
        bandwidth_ = scale > 0.0 ? scale * 1e-3 : 1.0;
    }
}

double
KernelDensity::at(double x) const
{
    const double inv = 1.0 / bandwidth_;
    double acc = 0.0;
    for (double v : data_) {
        const double u = (x - v) * inv;
        acc += std::exp(-0.5 * u * u);
    }
    return acc * inv / (std::sqrt(2.0 * M_PI) * double(data_.size()));
}

std::vector<std::pair<double, double>>
KernelDensity::grid(int points) const
{
    mbias_assert(points >= 2, "grid needs >= 2 points");
    const auto [mn, mx] = std::minmax_element(data_.begin(), data_.end());
    const double lo = *mn - 2.0 * bandwidth_;
    const double hi = *mx + 2.0 * bandwidth_;
    std::vector<std::pair<double, double>> out;
    out.reserve(points);
    for (int i = 0; i < points; ++i) {
        const double x = lo + (hi - lo) * double(i) / double(points - 1);
        out.emplace_back(x, at(x));
    }
    return out;
}

ViolinSummary
ViolinSummary::of(const Sample &s)
{
    ViolinSummary v;
    v.min = s.min();
    v.p25 = s.quantile(0.25);
    v.median = s.median();
    v.p75 = s.quantile(0.75);
    v.max = s.max();
    return v;
}

std::string
ViolinSummary::strip(const Sample &s, int width) const
{
    mbias_assert(width >= 2, "strip needs width >= 2");
    static const char glyphs[] = " .:-=+*#%@";
    KernelDensity kde(s);
    std::vector<double> dens(width);
    double peak = 0.0;
    const double span = max > min ? max - min : 1.0;
    for (int i = 0; i < width; ++i) {
        const double x = min + span * double(i) / double(width - 1);
        dens[i] = kde.at(x);
        peak = std::max(peak, dens[i]);
    }
    std::string out(width, ' ');
    for (int i = 0; i < width; ++i) {
        const int level =
            peak > 0.0 ? int(dens[i] / peak * 9.0 + 0.5) : 0;
        out[i] = glyphs[std::clamp(level, 0, 9)];
    }
    return out;
}

} // namespace mbias::stats
