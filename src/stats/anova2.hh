#ifndef MBIAS_STATS_ANOVA2_HH
#define MBIAS_STATS_ANOVA2_HH

#include <vector>

#include "stats/anova.hh"

namespace mbias::stats
{

/** Result of a two-way (factorial) analysis of variance. */
struct TwoWayAnovaResult
{
    /** Main effect of factor A (rows). */
    double fA = 0.0;
    double pA = 1.0;
    /** Main effect of factor B (columns). */
    double fB = 0.0;
    double pB = 1.0;
    /** A x B interaction. */
    double fAB = 0.0;
    double pAB = 1.0;

    double ssA = 0.0, ssB = 0.0, ssAB = 0.0, ssWithin = 0.0;
    double dfA = 0.0, dfB = 0.0, dfAB = 0.0, dfWithin = 0.0;

    bool mainEffectASignificant() const { return pA < 0.05; }
    bool mainEffectBSignificant() const { return pB < 0.05; }
    bool interactionSignificant() const { return pAB < 0.05; }
};

/**
 * Balanced two-way ANOVA over @p cells, indexed cells[a][b] with every
 * cell holding the same number (>= 2) of replicate observations.  Used
 * by the bias toolkit to ask whether the two setup factors (environment
 * size, link order) merely add up or genuinely *interact* — interaction
 * meaning the env effect itself depends on the link order, so
 * controlling one factor cannot de-bias the other.
 */
TwoWayAnovaResult
twoWayAnova(const std::vector<std::vector<Sample>> &cells);

} // namespace mbias::stats

#endif // MBIAS_STATS_ANOVA2_HH
