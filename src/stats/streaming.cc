#include "stats/streaming.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"

namespace mbias::stats
{

namespace
{

/** Fixed-seed SplitMix64 step: the reservoir's only randomness source,
 *  so reservoir contents are a pure function of the value stream. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

StreamingSample::StreamingSample(std::size_t quantile_capacity)
    : capacity_(quantile_capacity),
      reservoirState_(0x5eed5eed5eed5eedULL)
{
    reservoir_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void
StreamingSample::add(double x)
{
    ++count_;
    // Welford's online moments.
    const double delta = x - mean_;
    mean_ += delta / double(count_);
    m2_ += delta * (x - mean_);
    // Neumaier-compensated total.
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x))
        sumComp_ += (sum_ - t) + x;
    else
        sumComp_ += (x - t) + sum_;
    sum_ = t;
    if (count_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    if (capacity_ == 0)
        return;
    scratchValid_ = false;
    if (reservoir_.size() < capacity_) {
        reservoir_.push_back(x);
    } else {
        // Algorithm R: keep each seen value with probability K/count.
        const std::uint64_t r = splitMix64(reservoirState_);
        const std::size_t j = std::size_t(
            (double(r >> 11) * 0x1.0p-53) * double(count_));
        if (j < capacity_)
            reservoir_[j] = x;
    }
}

void
StreamingSample::merge(const StreamingSample &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    // Chan's pairwise combination of (count, mean, M2).
    const double na = double(count_), nb = double(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * (nb / n);
    m2_ += other.m2_ + delta * delta * (na * nb / n);
    count_ += other.count_;
    // Totals: fold other's compensated sum in as one addend.
    const double x = other.sum_ + other.sumComp_;
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x))
        sumComp_ += (sum_ - t) + x;
    else
        sumComp_ += (x - t) + sum_;
    sum_ = t;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    if (capacity_ == 0)
        return;
    scratchValid_ = false;
    // Retained values: exact concatenation while it fits, otherwise a
    // deterministic downsample of the pooled retained values.
    reservoir_.insert(reservoir_.end(), other.reservoir_.begin(),
                      other.reservoir_.end());
    if (reservoir_.size() > capacity_) {
        for (std::size_t i = 0; i < capacity_; ++i) {
            const std::size_t span = reservoir_.size() - i;
            const std::uint64_t r = splitMix64(reservoirState_);
            const std::size_t j =
                i + std::size_t((double(r >> 11) * 0x1.0p-53) *
                                double(span));
            std::swap(reservoir_[i], reservoir_[j]);
        }
        reservoir_.resize(capacity_);
    }
}

double
StreamingSample::mean() const
{
    mbias_assert(count_ > 0, "mean of empty streaming sample");
    return mean_;
}

double
StreamingSample::sum() const
{
    return sum_ + sumComp_;
}

double
StreamingSample::variance() const
{
    mbias_assert(count_ >= 2, "variance needs n >= 2");
    return m2_ / double(count_ - 1);
}

double
StreamingSample::stddev() const
{
    return std::sqrt(variance());
}

double
StreamingSample::stderror() const
{
    return stddev() / std::sqrt(double(count_));
}

double
StreamingSample::min() const
{
    mbias_assert(count_ > 0, "min of empty streaming sample");
    return min_;
}

double
StreamingSample::max() const
{
    mbias_assert(count_ > 0, "max of empty streaming sample");
    return max_;
}

bool
StreamingSample::quantilesExact() const
{
    return capacity_ > 0 && count_ <= capacity_ &&
           reservoir_.size() == count_;
}

double
StreamingSample::quantile(double q) const
{
    mbias_assert(capacity_ > 0,
                 "quantile needs a StreamingSample with a reservoir");
    mbias_assert(!reservoir_.empty(), "quantile of empty sample");
    mbias_assert(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1]");
    if (!scratchValid_) {
        scratch_ = reservoir_;
        std::sort(scratch_.begin(), scratch_.end());
        scratchValid_ = true;
    }
    const auto &s = scratch_;
    if (s.size() == 1)
        return s.front();
    const double pos = q * double(s.size() - 1);
    const std::size_t lo = std::size_t(pos);
    const std::size_t hi = std::min(lo + 1, s.size() - 1);
    const double frac = pos - double(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double
StreamingSample::median() const
{
    return quantile(0.5);
}

std::string
StreamingSample::summary() const
{
    std::ostringstream os;
    os << "n=" << count_;
    if (count_ > 0) {
        os << " mean=" << mean() << " min=" << min() << " max=" << max();
        if (count_ >= 2)
            os << " sd=" << stddev();
        if (capacity_ > 0 && !quantilesExact())
            os << " (quantiles approximate)";
    }
    return os.str();
}

} // namespace mbias::stats
