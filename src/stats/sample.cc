#include "stats/sample.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "base/logging.hh"

namespace mbias::stats
{

Sample::Sample(std::vector<double> values) : values_(std::move(values)) {}

void
Sample::add(double v)
{
    values_.push_back(v);
    sortedValid_ = false;
}

void
Sample::addAll(const Sample &other)
{
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
    sortedValid_ = false;
}

const std::vector<double> &
Sample::sorted() const
{
    if (!sortedValid_) {
        sorted_ = values_;
        std::sort(sorted_.begin(), sorted_.end());
        sortedValid_ = true;
    }
    return sorted_;
}

double
Sample::mean() const
{
    mbias_assert(!values_.empty(), "mean of empty sample");
    return sum() / double(values_.size());
}

double
Sample::sum() const
{
    return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double
Sample::variance() const
{
    mbias_assert(values_.size() >= 2, "variance needs n >= 2");
    const double m = mean();
    double acc = 0.0;
    for (double v : values_)
        acc += (v - m) * (v - m);
    return acc / double(values_.size() - 1);
}

double
Sample::stddev() const
{
    return std::sqrt(variance());
}

double
Sample::stderror() const
{
    return stddev() / std::sqrt(double(values_.size()));
}

double
Sample::min() const
{
    mbias_assert(!values_.empty(), "min of empty sample");
    return sorted().front();
}

double
Sample::max() const
{
    mbias_assert(!values_.empty(), "max of empty sample");
    return sorted().back();
}

double
Sample::median() const
{
    return quantile(0.5);
}

double
Sample::quantile(double q) const
{
    mbias_assert(!values_.empty(), "quantile of empty sample");
    mbias_assert(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1]");
    const auto &s = sorted();
    if (s.size() == 1)
        return s.front();
    const double pos = q * double(s.size() - 1);
    const std::size_t lo = std::size_t(pos);
    const std::size_t hi = std::min(lo + 1, s.size() - 1);
    const double frac = pos - double(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double
Sample::geomean() const
{
    mbias_assert(!values_.empty(), "geomean of empty sample");
    double acc = 0.0;
    for (double v : values_) {
        mbias_assert(v > 0.0, "geomean requires positive values");
        acc += std::log(v);
    }
    return std::exp(acc / double(values_.size()));
}

double
Sample::harmonicMean() const
{
    mbias_assert(!values_.empty(), "harmonic mean of empty sample");
    double acc = 0.0;
    for (double v : values_) {
        mbias_assert(v > 0.0, "harmonic mean requires positive values");
        acc += 1.0 / v;
    }
    return double(values_.size()) / acc;
}

double
Sample::cv() const
{
    return stddev() / mean();
}

double
Sample::range() const
{
    return max() - min();
}

std::string
Sample::summary() const
{
    std::ostringstream os;
    os << "n=" << count();
    if (!empty()) {
        os << " mean=" << mean() << " min=" << min() << " med=" << median()
           << " max=" << max();
        if (count() >= 2)
            os << " sd=" << stddev();
    }
    return os.str();
}

double
geomean(const std::vector<double> &values)
{
    return Sample(values).geomean();
}

} // namespace mbias::stats
