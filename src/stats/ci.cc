#include "stats/ci.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"
#include "stats/distributions.hh"

namespace mbias::stats
{

std::string
ConfidenceInterval::str() const
{
    std::ostringstream os;
    os << estimate << " [" << lower << ", " << upper << "]";
    return os.str();
}

ConfidenceInterval
tInterval(const Sample &s, double level)
{
    return tIntervalMoments(s.mean(), s.stderror(), s.count(), level);
}

ConfidenceInterval
tIntervalMoments(double mean, double stderror, std::size_t n,
                 double level)
{
    mbias_assert(n >= 2, "t interval needs n >= 2");
    const double df = double(n - 1);
    const double tcrit = studentTCritical(level, df);
    const double half = tcrit * stderror;
    ConfidenceInterval ci;
    ci.estimate = mean;
    ci.lower = ci.estimate - half;
    ci.upper = ci.estimate + half;
    ci.level = level;
    return ci;
}

ConfidenceInterval
bootstrapInterval(const Sample &s, Rng &rng, int resamples, double level)
{
    mbias_assert(!s.empty(), "bootstrap of empty sample");
    mbias_assert(resamples >= 10, "too few bootstrap resamples");
    const auto &v = s.values();
    std::vector<double> means;
    means.reserve(resamples);
    for (int r = 0; r < resamples; ++r) {
        double acc = 0.0;
        for (std::size_t i = 0; i < v.size(); ++i)
            acc += v[rng.nextBounded(v.size())];
        means.push_back(acc / double(v.size()));
    }
    std::sort(means.begin(), means.end());
    const double alpha = 1.0 - level;
    auto at = [&](double q) {
        double pos = q * double(means.size() - 1);
        std::size_t lo = std::size_t(pos);
        std::size_t hi = std::min(lo + 1, means.size() - 1);
        double frac = pos - double(lo);
        return means[lo] * (1.0 - frac) + means[hi] * frac;
    };
    ConfidenceInterval ci;
    ci.estimate = s.mean();
    ci.lower = at(alpha / 2.0);
    ci.upper = at(1.0 - alpha / 2.0);
    ci.level = level;
    return ci;
}

double
welchTTestPValue(const Sample &a, const Sample &b)
{
    mbias_assert(a.count() >= 2 && b.count() >= 2,
                 "Welch test needs n >= 2 in both samples");
    const double va = a.variance() / double(a.count());
    const double vb = b.variance() / double(b.count());
    if (va + vb == 0.0)
        return a.mean() == b.mean() ? 1.0 : 0.0;
    const double t = (a.mean() - b.mean()) / std::sqrt(va + vb);
    const double df =
        (va + vb) * (va + vb) /
        (va * va / double(a.count() - 1) + vb * vb / double(b.count() - 1));
    const double p_one = 1.0 - studentTCdf(std::fabs(t), df);
    return std::min(1.0, 2.0 * p_one);
}

ConfidenceInterval
ratioInterval(const Sample &numerator, const Sample &denominator,
              double level)
{
    mbias_assert(numerator.count() >= 2 && denominator.count() >= 2,
                 "ratio interval needs n >= 2 in both samples");
    const double mn = numerator.mean();
    const double md = denominator.mean();
    mbias_assert(md != 0.0, "denominator mean is zero");
    const double ratio = mn / md;
    // Delta method: Var(a/b) ~ (1/b^2) Var(a) + (a^2/b^4) Var(b).
    const double var = numerator.variance() / double(numerator.count()) /
                           (md * md) +
                       mn * mn * denominator.variance() /
                           double(denominator.count()) / (md * md * md * md);
    const double df =
        double(std::min(numerator.count(), denominator.count()) - 1);
    const double half = studentTCritical(level, df) * std::sqrt(var);
    ConfidenceInterval ci;
    ci.estimate = ratio;
    ci.lower = ratio - half;
    ci.upper = ratio + half;
    ci.level = level;
    return ci;
}

} // namespace mbias::stats
