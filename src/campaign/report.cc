#include "campaign/report.hh"

#include <cstdio>
#include <sstream>

#include "base/logging.hh"
#include "campaign/store.hh"
#include "obs/trace.hh"
#include "stats/engine.hh"

namespace mbias::campaign
{

std::string
CampaignStats::str() const
{
    std::ostringstream os;
    os << totalTasks << " tasks: " << executed << " executed, "
       << cacheHits << " cache hits, " << resumedFromStore
       << " resumed from store; " << jobs << " job(s), "
       << wallSeconds << " s";
    return os.str();
}

std::string
CampaignReport::str() const
{
    std::ostringstream os;
    os << bias.str();
    os << "  campaign        : " << stats.str() << "\n";
    // The acceptance-facing latency summary; schedule-dependent, so
    // informational only (unlike the counters above).
    auto hist = [&](const char *name) {
        auto it = metrics.histograms.find(name);
        return it == metrics.histograms.end() ? obs::HistogramStats{}
                                              : it->second;
    };
    const auto run = hist("task.execute_us");
    const auto wait = hist("pool.queue_wait_us");
    if (run.count || wait.count) {
        os << "  latency         : task p50 " << run.quantile(0.5)
           << " us, p99 " << run.quantile(0.99)
           << " us; queue wait mean ";
        char mean[32];
        std::snprintf(mean, sizeof(mean), "%.1f", wait.mean());
        os << mean << " us\n";
    }
    return os.str();
}

std::string
StoreAnalysis::str() const
{
    std::ostringstream os;
    os << "store           : " << path << "\n"
       << "records         : " << records;
    if (tornLines)
        os << "  (+" << tornLines << " torn lines dropped)";
    os << "\n"
       << "speedup         : " << speedups.summary() << "\n"
       << "bootstrap CI    : " << bootstrapCI.str() << "  ("
       << bootstrapCI.level * 100.0 << "%, percentile bootstrap)\n"
       << "t CI            : " << tCI.str() << "  (Student-t)\n";
    obs::Provenance prov;
    if (!provenanceJson.empty() &&
        obs::Provenance::fromJson(provenanceJson, prov))
        os << "recorded by:\n" << prov.str();
    return os.str();
}

StoreAnalysis
analyzeStore(const std::string &path, const AnalyzeOptions &opts)
{
    obs::ScopedSpan span("analyze-store", "stats");
    StoreAnalysis a;
    a.path = path;

    const StoreColumns cols = readStoreColumns(path, opts.metrics);
    a.records = cols.rows();
    a.tornLines = cols.tornLines;
    a.provenanceJson = cols.provenanceJson;
    mbias_assert(a.records >= 2,
                 "store analysis needs >= 2 records: ", path);

    // Moments and quantiles in one pass over the column (exact
    // quantiles until a store outgrows the reservoir).
    a.speedups = stats::StreamingSample(1u << 16);
    for (double v : cols.speedup)
        a.speedups.add(v);
    a.tCI = stats::tIntervalMoments(a.speedups.mean(),
                                    a.speedups.stderror(), a.records,
                                    opts.confidence);

    stats::EngineOptions eo;
    eo.jobs = opts.jobs;
    eo.metrics = opts.metrics;
    a.bootstrapCI = stats::Engine(eo).bootstrapInterval(
        cols.speedup, opts.seed, opts.resamples, opts.confidence);
    return a;
}

} // namespace mbias::campaign
