#include "campaign/report.hh"

#include <sstream>

namespace mbias::campaign
{

std::string
CampaignStats::str() const
{
    std::ostringstream os;
    os << totalTasks << " tasks: " << executed << " executed, "
       << cacheHits << " cache hits, " << resumedFromStore
       << " resumed from store; " << jobs << " job(s), "
       << wallSeconds << " s";
    return os.str();
}

std::string
CampaignReport::str() const
{
    std::ostringstream os;
    os << bias.str();
    os << "  campaign        : " << stats.str() << "\n";
    return os.str();
}

} // namespace mbias::campaign
