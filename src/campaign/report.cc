#include "campaign/report.hh"

#include <cstdio>
#include <sstream>

namespace mbias::campaign
{

std::string
CampaignStats::str() const
{
    std::ostringstream os;
    os << totalTasks << " tasks: " << executed << " executed, "
       << cacheHits << " cache hits, " << resumedFromStore
       << " resumed from store; " << jobs << " job(s), "
       << wallSeconds << " s";
    return os.str();
}

std::string
CampaignReport::str() const
{
    std::ostringstream os;
    os << bias.str();
    os << "  campaign        : " << stats.str() << "\n";
    // The acceptance-facing latency summary; schedule-dependent, so
    // informational only (unlike the counters above).
    auto hist = [&](const char *name) {
        auto it = metrics.histograms.find(name);
        return it == metrics.histograms.end() ? obs::HistogramStats{}
                                              : it->second;
    };
    const auto run = hist("task.execute_us");
    const auto wait = hist("pool.queue_wait_us");
    if (run.count || wait.count) {
        os << "  latency         : task p50 " << run.quantile(0.5)
           << " us, p99 " << run.quantile(0.99)
           << " us; queue wait mean ";
        char mean[32];
        std::snprintf(mean, sizeof(mean), "%.1f", wait.mean());
        os << mean << " us\n";
    }
    return os.str();
}

} // namespace mbias::campaign
