#ifndef MBIAS_CAMPAIGN_REPORT_HH
#define MBIAS_CAMPAIGN_REPORT_HH

#include <cstdint>
#include <string>

#include "core/bias.hh"
#include "obs/metrics.hh"
#include "obs/provenance.hh"

namespace mbias::campaign
{

/** Execution accounting of one engine run. */
struct CampaignStats
{
    std::uint64_t totalTasks = 0;

    /** Tasks that actually ran the simulator this time. */
    std::uint64_t executed = 0;

    /** Tasks served by the in-memory content-addressed cache. */
    std::uint64_t cacheHits = 0;

    /** Tasks served by the persistent store (resumed runs). */
    std::uint64_t resumedFromStore = 0;

    unsigned jobs = 1;
    double wallSeconds = 0.0;

    /** One-line accounting summary. */
    std::string str() const;
};

/**
 * What a campaign produces: the paper-facing bias analysis (the same
 * BiasReport the serial BiasAnalyzer yields, aggregated from the
 * campaign's outcomes in task order), execution accounting, the
 * run's metrics snapshot, and the host-setup provenance it ran under
 * — so every reported number is auditable after the fact.
 */
struct CampaignReport
{
    core::BiasReport bias;
    CampaignStats stats;

    /** This run's merged metrics (empty with MBIAS_OBS=OFF). */
    obs::MetricsSnapshot metrics;

    /** Host setup of this run (also in the store header). */
    obs::Provenance provenance;

    /** bias.str() plus the accounting and latency lines. */
    std::string str() const;
};

} // namespace mbias::campaign

#endif // MBIAS_CAMPAIGN_REPORT_HH
