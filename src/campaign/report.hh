#ifndef MBIAS_CAMPAIGN_REPORT_HH
#define MBIAS_CAMPAIGN_REPORT_HH

#include <cstdint>
#include <string>

#include "core/bias.hh"
#include "obs/metrics.hh"
#include "obs/provenance.hh"
#include "stats/streaming.hh"

namespace mbias::campaign
{

/** Execution accounting of one engine run. */
struct CampaignStats
{
    std::uint64_t totalTasks = 0;

    /** Tasks that actually ran the simulator this time. */
    std::uint64_t executed = 0;

    /** Tasks served by the in-memory content-addressed cache. */
    std::uint64_t cacheHits = 0;

    /** Tasks served by the persistent store (resumed runs). */
    std::uint64_t resumedFromStore = 0;

    unsigned jobs = 1;
    double wallSeconds = 0.0;

    /** One-line accounting summary. */
    std::string str() const;
};

/**
 * What a campaign produces: the paper-facing bias analysis (the same
 * BiasReport the serial BiasAnalyzer yields, aggregated from the
 * campaign's outcomes in task order), execution accounting, the
 * run's metrics snapshot, and the host-setup provenance it ran under
 * — so every reported number is auditable after the fact.
 */
struct CampaignReport
{
    core::BiasReport bias;
    CampaignStats stats;

    /** This run's merged metrics (empty with MBIAS_OBS=OFF). */
    obs::MetricsSnapshot metrics;

    /** Host setup of this run (also in the store header). */
    obs::Provenance provenance;

    /** bias.str() plus the accounting and latency lines. */
    std::string str() const;
};

/** How `mbias analyze` (and analyzeStore) re-analyzes a store. */
struct AnalyzeOptions
{
    /** Stats-engine workers; results identical for any value. */
    unsigned jobs = 1;

    /** Bootstrap resamples for the speedup CI. */
    int resamples = 1000;

    /** Confidence level of both reported intervals. */
    double confidence = 0.95;

    /** Root of the bootstrap's per-resample streams. */
    std::uint64_t seed = 42;

    /** Optional registry for stats.* / store.* counters. */
    obs::Registry *metrics = nullptr;
};

/**
 * Offline analysis of a persisted campaign store: what a finished (or
 * still-running) campaign's speedup distribution looks like, computed
 * without re-running anything.  Unlike CampaignReport — which holds
 * every RunOutcome — this aggregates the store's columnar view through
 * streaming moments plus the stats engine, so its memory footprint is
 * the store's speedup column, not the materialized outcome objects.
 */
struct StoreAnalysis
{
    std::string path;
    std::size_t records = 0;
    std::size_t tornLines = 0;

    /** Single-pass moments + exact-until-overflow quantiles of the
     *  speedup column. */
    stats::StreamingSample speedups;

    /** Percentile-bootstrap CI from the stats engine (AnalyzeOptions
     *  resamples/seed; bitwise identical at any jobs). */
    stats::ConfidenceInterval bootstrapCI;

    /** Student-t CI from the streaming moments, for comparison. */
    stats::ConfidenceInterval tCI;

    /** Provenance JSON of the store header; empty when absent. */
    std::string provenanceJson;

    /** Multi-line human-readable rendering. */
    std::string str() const;
};

/**
 * Reads @p path once (columnar fast path) and analyzes the speedup
 * column.  Requires at least two records.
 */
StoreAnalysis analyzeStore(const std::string &path,
                           const AnalyzeOptions &opts = {});

} // namespace mbias::campaign

#endif // MBIAS_CAMPAIGN_REPORT_HH
