#ifndef MBIAS_CAMPAIGN_SPEC_HH
#define MBIAS_CAMPAIGN_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/setup.hh"
#include "sim/noise.hh"

namespace mbias::campaign
{

/**
 * How many times — and under which randomization — each setup is
 * measured.  The paper's remedies need mass re-execution in two
 * flavours: one paired run per setup (setup randomization, Fig. 7),
 * or many per-run layout-randomized repetitions per setup (the
 * Stabilizer-style remedy, Fig. 11).
 */
struct RepetitionPlan
{
    enum class Kind
    {
        /** One paired baseline/treatment run per setup. */
        Single,
        /** @c reps stack-ASLR-randomized runs per side; the task's
         *  speedup is the ratio of the two metric means. */
        AslrRandomized,
        /**
         * One baseline-side run per setup, no treatment (the causal
         * analyses and the mechanism ablation sweep only observe one
         * side).  The outcome carries the full baseline RunResult;
         * speedup is fixed at 1.
         */
        BaselineOnly,
        /**
         * @c reps noise-seeded baseline runs per setup (seeds
         * taskSeed, taskSeed+1, ...) — the conventional "repeat the
         * run k times" methodology.  Per-rep metric values land in
         * RunOutcome::repBaseline; no treatment side.
         */
        NoiseRepeated,
        /**
         * @c reps noise-seeded runs per *side*: baseline at seeds
         * taskSeed+r, treatment at taskSeed+treatSeedOffset+r.  Both
         * per-rep samples land in the outcome; the task speedup is
         * the ratio of the two means.  Backs the variance analysis
         * (within-/between-setup decomposition).
         */
        NoisePaired,
    };

    Kind kind = Kind::Single;
    unsigned reps = 1;

    /** NoisePaired only: offset of the treatment side's noise-seed
     *  base from the task seed (keeps the two sides' noise streams
     *  disjoint, and historical figures byte-compatible). */
    std::uint64_t treatSeedOffset = 0;

    /**
     * Noise-model template for the noise-seeded kinds (NoiseRepeated,
     * NoisePaired): each repetition runs under this model with only
     * the seed overwritten (seed base + rep).  The default is exactly
     * what ExperimentRunner::repeatedMetric always built —
     * NoiseModel::withSeed(·) — so existing campaigns are bitwise
     * unchanged; figures sweep other factors (e.g. DVFS frequency
     * steps, fig13) by overriding the template per arm.
     */
    sim::NoiseModel noiseTemplate = sim::NoiseModel::withSeed(0);

    bool operator==(const RepetitionPlan &) const = default;

    /** True for kinds whose outcome depends on the task seed. */
    bool consumesSeed() const
    {
        return kind == Kind::AslrRandomized ||
               kind == Kind::NoiseRepeated || kind == Kind::NoisePaired;
    }

    /** True for kinds that fill per-rep sample vectors (which the
     *  JSONL store does not persist — such campaigns run storeless). */
    bool samplesReps() const
    {
        return kind == Kind::NoiseRepeated || kind == Kind::NoisePaired;
    }
};

/** An explicit setup paired with a pinned task seed — for figures
 *  whose historical per-cell noise seeds follow a formula of the
 *  grid indices rather than the campaign-seed stream. */
struct SeededSetup
{
    core::ExperimentSetup setup;
    std::uint64_t taskSeed = 0;
};

/**
 * One schedulable unit of a campaign: measure one setup under the
 * repetition plan.  Everything a task needs is decided at expansion
 * time — the setup and the seed are pure functions of (campaign seed,
 * task index) — so tasks may execute on any worker in any order and
 * still produce the bitwise-identical outcome.
 */
struct CampaignTask
{
    std::uint64_t index = 0;
    core::ExperimentSetup setup;

    /** Root of the task's private RNG streams (ASLR seeds etc.),
     *  derived from the campaign seed and @c index. */
    std::uint64_t taskSeed = 0;

    RepetitionPlan plan;
};

/**
 * A whole experiment campaign: an ExperimentSpec, a setup plan
 * (either an explicit list or a SetupSpace to sample), and a
 * RepetitionPlan.  expand() turns it into the deterministic task list
 * the engine schedules; equal specs always expand to equal tasks.
 */
class CampaignSpec
{
  public:
    CampaignSpec() = default;

    core::ExperimentSpec experiment;
    RepetitionPlan plan;

    /** Root seed: determines every sampled setup and task seed. */
    std::uint64_t seed = 42;

    /**
     * Loader override: force this initial stack-pointer alignment in
     * every task (the "align the stack" causal intervention).  0 = no
     * override.  Campaigns with an override run storeless — the
     * alignment is not part of the record's content address.
     */
    std::uint64_t spAlign = 0;

    /** @name Fluent setters @{ */
    CampaignSpec &withExperiment(core::ExperimentSpec spec);
    CampaignSpec &withPlan(RepetitionPlan plan);
    CampaignSpec &withSeed(std::uint64_t seed);
    CampaignSpec &withSpAlign(std::uint64_t align);

    /** Measures exactly these setups, in this order. */
    CampaignSpec &withSetups(std::vector<core::ExperimentSetup> setups);

    /** Measures exactly these setups with their pinned task seeds. */
    CampaignSpec &withSeededSetups(std::vector<SeededSetup> setups);

    /** Samples @p n setups from @p space (streams keyed by task
     *  index, so the sample is independent of execution order). */
    CampaignSpec &withSpace(core::SetupSpace space, unsigned n);
    /** @} */

    /** Number of tasks expand() will produce. */
    std::size_t taskCount() const;

    /** Expands into the deterministic task list. */
    std::vector<CampaignTask> expand() const;

    /** One-line description, e.g. "perl: gcc-O2 vs gcc-O3 ... x200". */
    std::string str() const;

  private:
    std::vector<core::ExperimentSetup> explicitSetups_;
    std::vector<SeededSetup> seededSetups_;
    std::optional<core::SetupSpace> space_;
    unsigned sampled_ = 0;
};

} // namespace mbias::campaign

#endif // MBIAS_CAMPAIGN_SPEC_HH
