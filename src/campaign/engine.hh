#ifndef MBIAS_CAMPAIGN_ENGINE_HH
#define MBIAS_CAMPAIGN_ENGINE_HH

#include <string>

#include "campaign/report.hh"
#include "campaign/spec.hh"

namespace mbias::campaign
{

/** How a campaign is executed and where results persist. */
struct CampaignOptions
{
    /** Worker threads; the task *results* are identical for any
     *  value (see docs/METHODOLOGY.md, "Why parallel == serial"). */
    unsigned jobs = 1;

    /**
     * Path of the JSONL result store; empty disables persistence.
     * Without resume an existing store file is discarded first.
     */
    std::string outPath;

    /** Reuse (skip) tasks already persisted under outPath. */
    bool resume = false;

    /**
     * Chrome-trace JSON output path; empty disables tracing.  The
     * engine runs a process-wide trace session for the duration of
     * run() and writes per-task phase spans (queue-wait,
     * setup-materialize, run, store-append, aggregate) viewable in
     * Perfetto (ui.perfetto.dev).  No-op with MBIAS_OBS=OFF.
     */
    std::string tracePath;

    /**
     * Live progress line on stderr (tasks done/total, cache-hit
     * rate, ETA), redrawn in place a few times a second.  Meant for
     * interactive ttys; off by default.
     */
    bool progress = false;

    /**
     * Materialize setups through the process-wide toolchain
     * ArtifactCache, so all workers share one compile per toolchain,
     * one link per (modules, order), and one layout per (program,
     * environment).  Artifacts are immutable and the toolchain is
     * deterministic, so results are bitwise-identical either way —
     * off (`--no-artifact-cache`) re-links and re-loads per task,
     * which is the benchmark's pre-cache baseline.
     */
    bool artifactCache = true;

    /** Confidence level of the report's speedup CI. */
    double confidence = 0.95;

    /**
     * 0 (the default) keeps the Student-t speedup CI; > 0 switches
     * the report to a percentile-bootstrap CI with this many
     * resamples, computed by the stats engine on the campaign's
     * worker budget (bitwise identical at any --jobs).  Resample
     * streams derive from the campaign seed.
     */
    int resamples = 0;
};

/**
 * Executes a CampaignSpec: expands it into the deterministic task
 * list, schedules the tasks on a work-stealing ThreadPool (one
 * ExperimentRunner per worker — see the runner's thread-safety
 * contract), serves repeated tasks from the content-addressed
 * ResultCache and previously persisted tasks from the ResultStore,
 * and aggregates everything into a CampaignReport.
 *
 * Determinism guarantee: for a fixed spec, the report's outcomes are
 * bitwise-identical regardless of jobs, scheduling order, resume
 * splits, or cache hit patterns.
 */
class CampaignEngine
{
  public:
    explicit CampaignEngine(CampaignSpec spec,
                            CampaignOptions opts = {});

    const CampaignSpec &spec() const { return spec_; }

    /** Runs (or resumes) the campaign to completion. */
    CampaignReport run();

  private:
    CampaignSpec spec_;
    CampaignOptions opts_;
};

} // namespace mbias::campaign

#endif // MBIAS_CAMPAIGN_ENGINE_HH
