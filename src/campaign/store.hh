#ifndef MBIAS_CAMPAIGN_STORE_HH
#define MBIAS_CAMPAIGN_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/spec.hh"
#include "core/runner.hh"
#include "obs/metrics.hh"
#include "obs/provenance.hh"

namespace mbias::campaign
{

/**
 * Content address of one campaign task: a 64-bit FNV-1a hash (16 hex
 * digits) over every input that determines the task's outcome —
 * workload + config, machine name(s), both toolchain specs, metric,
 * the setup, and the repetition plan (including the task seed, but
 * only when the plan actually consumes it, i.e. ASLR mode — so two
 * Single-mode tasks measuring the same setup share an address and a
 * cached result).
 *
 * Machines are identified by MachineConfig::name: campaigns over
 * hand-tweaked anonymous configs should give them distinct names or
 * forgo the store.
 */
std::string taskKey(const core::ExperimentSpec &experiment,
                    const CampaignTask &task);

/**
 * One persisted task outcome: the flat, order-stable JSON object
 * stored per line in the campaign's JSONL result store.  Speedup and
 * metric values are stored as raw IEEE-754 bit patterns (hex) so a
 * resumed campaign reproduces them *bitwise*, not round-tripped
 * through decimal.
 */
struct TaskRecord
{
    std::string key;
    std::uint64_t taskIndex = 0;

    // The setup (Explicit link orders are not storable; see toJson).
    std::uint64_t envBytes = 0;
    int linkKind = 0;
    std::uint64_t linkSeed = 0;

    int planKind = 0;
    unsigned reps = 1;

    // Single-mode payloads (zero in ASLR mode).
    std::uint64_t baseCycles = 0, baseInsts = 0, baseResult = 0;
    std::uint64_t treatCycles = 0, treatInsts = 0, treatResult = 0;

    // IEEE-754 bit patterns.
    std::uint64_t baseMetricBits = 0;
    std::uint64_t treatMetricBits = 0;
    std::uint64_t speedupBits = 0;

    /** Builds the record for a finished task. */
    static TaskRecord make(std::string key, const CampaignTask &task,
                           const core::RunOutcome &outcome,
                           double base_metric, double treat_metric);

    /** Reconstitutes the outcome a resumed campaign reuses. */
    core::RunOutcome toOutcome() const;

    /** One JSON object, no newline. */
    std::string toJson() const;

    /** Parses one line; returns false on malformed input. */
    static bool fromJson(const std::string &line, TaskRecord &out);
};

/**
 * In-memory content-addressed result cache, shared by all workers of
 * one engine run.  Two tasks with the same address (duplicate setups
 * in Single mode) compute the same outcome, so the second becomes a
 * lookup.  Thread-safe; a concurrent miss of the same key simply
 * means both tasks execute — identical results, so last-insert-wins
 * is harmless.
 */
class ResultCache
{
  public:
    /** With @p metrics, counts `cache.hits` / `cache.misses`. */
    explicit ResultCache(obs::Registry *metrics = nullptr);

    bool lookup(const std::string &key, core::RunOutcome &out) const;
    void insert(const std::string &key, const core::RunOutcome &o);

    /** Number of successful lookups so far. */
    std::uint64_t hits() const;

  private:
    mutable std::mutex mutex_;
    mutable std::uint64_t hits_ = 0;
    obs::Counter *hitCounter_ = nullptr;
    obs::Counter *missCounter_ = nullptr;
    std::unordered_map<std::string, core::RunOutcome> map_;
};

/**
 * The persistent result store: an append-only JSONL file that makes
 * campaigns resumable and self-describing.  Three line shapes share
 * the file:
 *
 *  - `{"mbias_store":1,"provenance":{...}}` — the header, first line
 *    of a fresh store: the host-setup provenance block of the run
 *    that created it (see obs::Provenance);
 *  - one TaskRecord object per finished task;
 *  - `{"mbias_metrics":1,...}` — a metrics-snapshot trailer appended
 *    when a campaign finishes (one per run; the last one wins).
 *
 * load() reads whatever a previous (possibly killed) run managed to
 * append — every dropped unparseable line is counted in tornLines()
 * (and `store.torn_lines`) and warned about with its byte offset, so
 * corruption is visible instead of silent — and the engine serves
 * loaded tasks from the store instead of re-executing them.  Records
 * are keyed by content address, so duplicate appends (e.g. two
 * identical tasks racing a cache miss) collapse on load.
 */
class ResultStore
{
  public:
    /** With @p metrics, counts `store.appends`, `store.loaded`, and
     *  `store.torn_lines`. */
    explicit ResultStore(std::string path,
                        obs::Registry *metrics = nullptr);

    /** Loads existing records and header; returns how many records
     *  were read. */
    std::size_t load();

    /** Deletes any existing file (fresh, non-resumed campaigns). */
    void reset();

    /** Writes the provenance header line (fresh stores only — call
     *  after reset(), or after a load() that found no header). */
    void writeHeader(const obs::Provenance &prov);

    /** Appends a `{"mbias_metrics":1,...}` snapshot trailer. */
    void appendMetrics(const obs::MetricsSnapshot &snap);

    /** Raw provenance JSON of the header (written or loaded);
     *  empty when the store has none. */
    const std::string &headerProvenanceJson() const
    {
        return headerJson_;
    }

    /** Parses the header provenance; false when absent/malformed. */
    bool headerProvenance(obs::Provenance &out) const;

    /** Looks up a loaded record; nullptr when absent. */
    const TaskRecord *find(const std::string &key) const;

    /** Appends one record and flushes it to disk (thread-safe). */
    void append(const TaskRecord &rec);

    /** Number of loaded (not appended) records. */
    std::size_t loadedCount() const { return byKey_.size(); }

    /** Unparseable lines dropped by load() / torn tails healed by
     *  append() so far. */
    std::uint64_t tornLines() const { return tornLines_; }

    const std::string &path() const { return path_; }

  private:
    void countTorn(std::uintmax_t byte_offset, const char *what);

    std::string path_;
    std::mutex mutex_;
    bool tailChecked_ = false; ///< torn-tail repair done (see append)
    std::string headerJson_;
    std::uint64_t tornLines_ = 0;
    obs::Counter *tornCounter_ = nullptr;
    obs::Counter *appendCounter_ = nullptr;
    obs::Counter *loadedCounter_ = nullptr;
    std::unordered_map<std::string, TaskRecord> byKey_;
};

/**
 * What `mbias obs-summary` prints: the self-description a finished
 * store carries — provenance header, the last metrics trailer, and
 * record accounting.
 */
struct StoreSummary
{
    std::string path;
    std::string provenanceJson; ///< empty when the store has no header
    std::string metricsJson;    ///< last metrics trailer, or empty
    std::size_t records = 0;
    std::size_t tornLines = 0;

    /** Pretty, human-readable rendering. */
    std::string str() const;
};

/** Scans a store file without loading it into an engine. */
StoreSummary summarizeStore(const std::string &path);

/**
 * Columnar in-memory view of a store: one array per analyzed field,
 * rows deduplicated by content address (last record wins, matching
 * ResultStore::load) and ordered by ascending task index so the view
 * is independent of append order.  This is the shape the stats engine
 * consumes — analysis passes stream over a contiguous `speedup`
 * column instead of hopping across TaskRecord objects.
 */
struct StoreColumns
{
    std::vector<std::uint64_t> taskIndex;
    std::vector<std::uint64_t> envBytes;
    std::vector<double> baseMetric;
    std::vector<double> treatMetric;
    std::vector<double> speedup;
    std::size_t tornLines = 0;  ///< dropped unparseable lines
    std::string provenanceJson; ///< empty when the store has no header

    std::size_t rows() const { return speedup.size(); }
};

/**
 * Single-pass columnar read of a store file.  With @p metrics, counts
 * `store.loaded` and `store.torn_lines` like ResultStore::load.
 */
StoreColumns readStoreColumns(const std::string &path,
                              obs::Registry *metrics = nullptr);

} // namespace mbias::campaign

#endif // MBIAS_CAMPAIGN_STORE_HH
