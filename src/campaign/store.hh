#ifndef MBIAS_CAMPAIGN_STORE_HH
#define MBIAS_CAMPAIGN_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "campaign/spec.hh"
#include "core/runner.hh"

namespace mbias::campaign
{

/**
 * Content address of one campaign task: a 64-bit FNV-1a hash (16 hex
 * digits) over every input that determines the task's outcome —
 * workload + config, machine name(s), both toolchain specs, metric,
 * the setup, and the repetition plan (including the task seed, but
 * only when the plan actually consumes it, i.e. ASLR mode — so two
 * Single-mode tasks measuring the same setup share an address and a
 * cached result).
 *
 * Machines are identified by MachineConfig::name: campaigns over
 * hand-tweaked anonymous configs should give them distinct names or
 * forgo the store.
 */
std::string taskKey(const core::ExperimentSpec &experiment,
                    const CampaignTask &task);

/**
 * One persisted task outcome: the flat, order-stable JSON object
 * stored per line in the campaign's JSONL result store.  Speedup and
 * metric values are stored as raw IEEE-754 bit patterns (hex) so a
 * resumed campaign reproduces them *bitwise*, not round-tripped
 * through decimal.
 */
struct TaskRecord
{
    std::string key;
    std::uint64_t taskIndex = 0;

    // The setup (Explicit link orders are not storable; see toJson).
    std::uint64_t envBytes = 0;
    int linkKind = 0;
    std::uint64_t linkSeed = 0;

    int planKind = 0;
    unsigned reps = 1;

    // Single-mode payloads (zero in ASLR mode).
    std::uint64_t baseCycles = 0, baseInsts = 0, baseResult = 0;
    std::uint64_t treatCycles = 0, treatInsts = 0, treatResult = 0;

    // IEEE-754 bit patterns.
    std::uint64_t baseMetricBits = 0;
    std::uint64_t treatMetricBits = 0;
    std::uint64_t speedupBits = 0;

    /** Builds the record for a finished task. */
    static TaskRecord make(std::string key, const CampaignTask &task,
                           const core::RunOutcome &outcome,
                           double base_metric, double treat_metric);

    /** Reconstitutes the outcome a resumed campaign reuses. */
    core::RunOutcome toOutcome() const;

    /** One JSON object, no newline. */
    std::string toJson() const;

    /** Parses one line; returns false on malformed input. */
    static bool fromJson(const std::string &line, TaskRecord &out);
};

/**
 * In-memory content-addressed result cache, shared by all workers of
 * one engine run.  Two tasks with the same address (duplicate setups
 * in Single mode) compute the same outcome, so the second becomes a
 * lookup.  Thread-safe; a concurrent miss of the same key simply
 * means both tasks execute — identical results, so last-insert-wins
 * is harmless.
 */
class ResultCache
{
  public:
    bool lookup(const std::string &key, core::RunOutcome &out) const;
    void insert(const std::string &key, const core::RunOutcome &o);

    /** Number of successful lookups so far. */
    std::uint64_t hits() const;

  private:
    mutable std::mutex mutex_;
    mutable std::uint64_t hits_ = 0;
    std::unordered_map<std::string, core::RunOutcome> map_;
};

/**
 * The persistent result store: an append-only JSONL file (one
 * TaskRecord per line) that makes campaigns resumable.  load() reads
 * whatever a previous (possibly killed) run managed to append —
 * partial trailing lines are skipped — and the engine serves those
 * tasks from the store instead of re-executing them.  Records are
 * keyed by content address, so duplicate appends (e.g. two identical
 * tasks racing a cache miss) collapse on load.
 */
class ResultStore
{
  public:
    explicit ResultStore(std::string path);

    /** Loads existing records; returns how many were read. */
    std::size_t load();

    /** Deletes any existing file (fresh, non-resumed campaigns). */
    void reset();

    /** Looks up a loaded record; nullptr when absent. */
    const TaskRecord *find(const std::string &key) const;

    /** Appends one record and flushes it to disk (thread-safe). */
    void append(const TaskRecord &rec);

    /** Number of loaded (not appended) records. */
    std::size_t loadedCount() const { return byKey_.size(); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::mutex mutex_;
    bool tailChecked_ = false; ///< torn-tail repair done (see append)
    std::unordered_map<std::string, TaskRecord> byKey_;
};

} // namespace mbias::campaign

#endif // MBIAS_CAMPAIGN_STORE_HH
