#include "campaign/spec.hh"

#include <sstream>

#include "base/logging.hh"
#include "base/seeding.hh"

namespace mbias::campaign
{

namespace
{

// Distinct derivation domains so the setup-sampling stream and the
// task-seed stream of the same index never collide.
constexpr std::uint64_t setup_domain = 0x5345545550ULL; // "SETUP"
constexpr std::uint64_t seed_domain = 0x5345454453ULL;  // "SEEDS"

} // namespace

CampaignSpec &
CampaignSpec::withExperiment(core::ExperimentSpec spec)
{
    experiment = std::move(spec);
    return *this;
}

CampaignSpec &
CampaignSpec::withPlan(RepetitionPlan p)
{
    mbias_assert(p.reps >= 1, "repetition plan needs at least one rep");
    plan = p;
    return *this;
}

CampaignSpec &
CampaignSpec::withSeed(std::uint64_t s)
{
    seed = s;
    return *this;
}

CampaignSpec &
CampaignSpec::withSpAlign(std::uint64_t align)
{
    spAlign = align;
    return *this;
}

CampaignSpec &
CampaignSpec::withSetups(std::vector<core::ExperimentSetup> setups)
{
    mbias_assert(!setups.empty(), "campaign needs at least one setup");
    explicitSetups_ = std::move(setups);
    seededSetups_.clear();
    space_.reset();
    sampled_ = 0;
    return *this;
}

CampaignSpec &
CampaignSpec::withSeededSetups(std::vector<SeededSetup> setups)
{
    mbias_assert(!setups.empty(), "campaign needs at least one setup");
    seededSetups_ = std::move(setups);
    explicitSetups_.clear();
    space_.reset();
    sampled_ = 0;
    return *this;
}

CampaignSpec &
CampaignSpec::withSpace(core::SetupSpace space, unsigned n)
{
    mbias_assert(n >= 1, "campaign needs at least one setup");
    space_ = space;
    sampled_ = n;
    explicitSetups_.clear();
    seededSetups_.clear();
    return *this;
}

std::size_t
CampaignSpec::taskCount() const
{
    if (space_)
        return sampled_;
    if (!seededSetups_.empty())
        return seededSetups_.size();
    return explicitSetups_.size();
}

std::vector<CampaignTask>
CampaignSpec::expand() const
{
    mbias_assert(taskCount() > 0,
                 "campaign has no setups: call withSetups or withSpace");
    std::vector<CampaignTask> tasks;
    tasks.reserve(taskCount());
    for (std::size_t i = 0; i < taskCount(); ++i) {
        CampaignTask t;
        t.index = i;
        if (space_) {
            // Each task samples from its own child stream keyed by
            // index: task i's setup does not depend on how many other
            // tasks exist or which ones expanded first.
            Rng rng = streamRng(mixSeed(seed, setup_domain), i);
            t.setup = space_->sample(rng);
        } else if (!seededSetups_.empty()) {
            t.setup = seededSetups_[i].setup;
        } else {
            t.setup = explicitSetups_[i];
        }
        // Seeded setups pin the task seed exactly (figures whose
        // historical noise seeds follow a grid formula); everything
        // else derives it from the campaign seed and the index.
        t.taskSeed = seededSetups_.empty()
                         ? mixSeed(mixSeed(seed, seed_domain), i)
                         : seededSetups_[i].taskSeed;
        t.plan = plan;
        tasks.push_back(std::move(t));
    }
    return tasks;
}

std::string
CampaignSpec::str() const
{
    std::ostringstream os;
    os << experiment.str() << ", " << taskCount() << " setups";
    switch (plan.kind) {
      case RepetitionPlan::Kind::Single:
        break;
      case RepetitionPlan::Kind::AslrRandomized:
        os << " x " << plan.reps << " ASLR runs/side";
        break;
      case RepetitionPlan::Kind::BaselineOnly:
        os << ", baseline side only";
        break;
      case RepetitionPlan::Kind::NoiseRepeated:
        os << " x " << plan.reps << " noise reps (baseline)";
        break;
      case RepetitionPlan::Kind::NoisePaired:
        os << " x " << plan.reps << " noise reps/side";
        break;
    }
    os << " (seed " << seed << ")";
    return os.str();
}

} // namespace mbias::campaign
