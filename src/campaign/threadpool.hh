#ifndef MBIAS_CAMPAIGN_THREADPOOL_HH
#define MBIAS_CAMPAIGN_THREADPOOL_HH

// The work-stealing pool started life here but is now shared with the
// stats engine (which mbias_campaign links against, so the pool cannot
// live in the campaign library).  The implementation moved verbatim to
// parallel::ThreadPool; this alias keeps existing campaign-side users
// and tests source-compatible.
#include "parallel/pool.hh"

namespace mbias::campaign
{

using parallel::ThreadPool;

} // namespace mbias::campaign

#endif // MBIAS_CAMPAIGN_THREADPOOL_HH
