#include "campaign/engine.hh"

#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "base/logging.hh"
#include "base/seeding.hh"
#include "campaign/store.hh"
#include "campaign/threadpool.hh"

namespace mbias::campaign
{

namespace
{

/** A finished task: the outcome plus the per-side metric values the
 *  record persists (metric means in ASLR mode). */
struct TaskResult
{
    core::RunOutcome outcome;
    double baseMetric = 0.0;
    double treatMetric = 0.0;
};

TaskResult
executeTask(core::ExperimentRunner &runner, const CampaignTask &task)
{
    const core::ExperimentSpec &spec = runner.spec();
    TaskResult r;
    if (task.plan.kind == RepetitionPlan::Kind::Single) {
        r.outcome = runner.run(task.setup);
        r.baseMetric = runner.metricOf(r.outcome.baseline);
        r.treatMetric = runner.metricOf(r.outcome.treatment);
        return r;
    }
    // AslrRandomized: each side draws its per-run layout seeds from a
    // stream derived from the task seed, so the task is a pure
    // function of (campaign seed, index) like every other.
    auto base = runner.aslrRandomizedMetric(
        spec.baseline, task.setup, task.plan.reps, mixSeed(task.taskSeed, 0));
    auto treat = runner.aslrRandomizedMetric(
        spec.treatment, task.setup, task.plan.reps, mixSeed(task.taskSeed, 1));
    r.outcome.setup = task.setup;
    r.outcome.baseline.halted = r.outcome.treatment.halted = true;
    r.baseMetric = base.mean();
    r.treatMetric = treat.mean();
    mbias_assert(r.treatMetric > 0.0, "degenerate metric");
    r.outcome.speedup = r.baseMetric / r.treatMetric;
    return r;
}

} // namespace

CampaignEngine::CampaignEngine(CampaignSpec spec, CampaignOptions opts)
    : spec_(std::move(spec)), opts_(std::move(opts))
{
    mbias_assert(opts_.jobs >= 1, "campaign needs at least one job");
    mbias_assert(!opts_.resume || !opts_.outPath.empty(),
                 "--resume needs a result store path");
}

CampaignReport
CampaignEngine::run()
{
    const auto start = std::chrono::steady_clock::now();

    const std::vector<CampaignTask> tasks = spec_.expand();
    std::vector<std::string> keys;
    keys.reserve(tasks.size());
    for (const auto &t : tasks)
        keys.push_back(taskKey(spec_.experiment, t));

    std::unique_ptr<ResultStore> store;
    if (!opts_.outPath.empty()) {
        store = std::make_unique<ResultStore>(opts_.outPath);
        if (opts_.resume)
            store->load();
        else
            store->reset();
    }

    ThreadPool pool(opts_.jobs);
    ResultCache cache;
    std::vector<core::RunOutcome> results(tasks.size());
    // One runner per worker: the runner's compile cache is
    // single-thread-only (its documented contract), and compilation
    // is deterministic, so per-worker caches cannot diverge.
    std::vector<std::unique_ptr<core::ExperimentRunner>> runners(
        pool.jobs());
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> resumed{0};

    pool.parallelFor(tasks.size(), [&](std::size_t i, unsigned w) {
        const CampaignTask &task = tasks[i];
        const std::string &key = keys[i];

        if (store) {
            if (const TaskRecord *rec = store->find(key)) {
                results[i] = rec->toOutcome();
                resumed.fetch_add(1, std::memory_order_relaxed);
                return;
            }
        }
        if (cache.lookup(key, results[i]))
            return;

        if (!runners[w])
            runners[w] = std::make_unique<core::ExperimentRunner>(
                spec_.experiment);
        const TaskResult r = executeTask(*runners[w], task);
        executed.fetch_add(1, std::memory_order_relaxed);
        results[i] = r.outcome;
        cache.insert(key, r.outcome);
        if (store)
            store->append(TaskRecord::make(key, task, r.outcome,
                                           r.baseMetric, r.treatMetric));
    });

    CampaignReport report;
    report.bias = core::BiasAnalyzer().aggregate(spec_.experiment,
                                                 std::move(results));
    report.stats.totalTasks = tasks.size();
    report.stats.executed = executed.load();
    report.stats.cacheHits = cache.hits();
    report.stats.resumedFromStore = resumed.load();
    report.stats.jobs = pool.jobs();
    report.stats.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return report;
}

} // namespace mbias::campaign
