#include "campaign/engine.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "base/seeding.hh"
#include "campaign/store.hh"
#include "campaign/threadpool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/plan.hh"
#include "sim/replay.hh"
#include "sim/trace.hh"
#include "toolchain/artifacts.hh"

namespace mbias::campaign
{

namespace
{

/** A finished task: the outcome plus the per-side metric values the
 *  record persists (metric means in ASLR mode). */
struct TaskResult
{
    core::RunOutcome outcome;
    double baseMetric = 0.0;
    double treatMetric = 0.0;
};

TaskResult
executeTask(core::ExperimentRunner &runner, const CampaignTask &task)
{
    const core::ExperimentSpec &spec = runner.spec();
    TaskResult r;
    switch (task.plan.kind) {
      case RepetitionPlan::Kind::Single:
        r.outcome = runner.run(task.setup);
        r.baseMetric = runner.metricOf(r.outcome.baseline);
        r.treatMetric = runner.metricOf(r.outcome.treatment);
        return r;

      case RepetitionPlan::Kind::AslrRandomized: {
        // Each side draws its per-run layout seeds from a stream
        // derived from the task seed, so the task is a pure function
        // of (campaign seed, index) like every other.
        auto base = runner.aslrRandomizedMetric(spec.baseline, task.setup,
                                                task.plan.reps,
                                                mixSeed(task.taskSeed, 0));
        auto treat = runner.aslrRandomizedMetric(
            spec.treatment, task.setup, task.plan.reps,
            mixSeed(task.taskSeed, 1));
        r.outcome.setup = task.setup;
        r.outcome.baseline.halted = r.outcome.treatment.halted = true;
        r.baseMetric = base.mean();
        r.treatMetric = treat.mean();
        mbias_assert(r.treatMetric > 0.0, "degenerate metric");
        r.outcome.speedup = r.baseMetric / r.treatMetric;
        return r;
      }

      case RepetitionPlan::Kind::BaselineOnly:
        // One observed side, full RunResult kept (the causal sweep
        // reads every counter, not just the metric).
        r.outcome.setup = task.setup;
        r.outcome.baseline = runner.runSide(spec.baseline, task.setup);
        r.outcome.treatment.halted = true;
        r.baseMetric = r.treatMetric =
            runner.metricOf(r.outcome.baseline);
        r.outcome.speedup = 1.0;
        return r;

      case RepetitionPlan::Kind::NoiseRepeated: {
        // The conventional repeat-k-times methodology on the baseline
        // side: noise seeds taskSeed, taskSeed+1, ... — the same
        // derivation the serial drivers used, now owned by the
        // campaign lowering.
        auto base = runner.repeatedMetric(spec.baseline, task.setup,
                                          task.plan.reps, task.taskSeed,
                                          task.plan.noiseTemplate);
        r.outcome.setup = task.setup;
        r.outcome.baseline.halted = r.outcome.treatment.halted = true;
        r.outcome.repBaseline = base.values();
        r.baseMetric = r.treatMetric = base.mean();
        r.outcome.speedup = 1.0;
        return r;
      }

      case RepetitionPlan::Kind::NoisePaired: {
        auto base = runner.repeatedMetric(spec.baseline, task.setup,
                                          task.plan.reps, task.taskSeed,
                                          task.plan.noiseTemplate);
        auto treat = runner.repeatedMetric(
            spec.treatment, task.setup, task.plan.reps,
            task.taskSeed + task.plan.treatSeedOffset,
            task.plan.noiseTemplate);
        r.outcome.setup = task.setup;
        r.outcome.baseline.halted = r.outcome.treatment.halted = true;
        r.outcome.repBaseline = base.values();
        r.outcome.repTreatment = treat.values();
        r.baseMetric = base.mean();
        r.treatMetric = treat.mean();
        mbias_assert(r.treatMetric > 0.0, "degenerate metric");
        r.outcome.speedup = r.baseMetric / r.treatMetric;
        return r;
      }
    }
    mbias_panic("unknown repetition plan kind ", int(task.plan.kind));
}

/**
 * The live progress line: a helper thread redraws one stderr line a
 * few times a second — `NNN/NNN tasks (PP%) | cache HH% | ETA SSs` —
 * and blanks it on completion so the final report starts clean.
 * Display only; it never touches task state.
 */
class ProgressMeter
{
  public:
    ProgressMeter(bool enabled, std::uint64_t total,
                  const std::atomic<std::uint64_t> &done,
                  const std::atomic<std::uint64_t> &cache_hits)
        : total_(total)
    {
        if (!enabled || total == 0)
            return;
        start_ = std::chrono::steady_clock::now();
        thread_ = std::thread([this, &done, &cache_hits] {
            std::unique_lock<std::mutex> lock(mutex_);
            while (!stop_) {
                draw(done.load(), cache_hits.load());
                cv_.wait_for(lock, std::chrono::milliseconds(200));
            }
            // Blank the line out so the report overwrites it.
            std::fprintf(stderr, "\r%78s\r", "");
        });
    }

    ~ProgressMeter()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    void
    draw(std::uint64_t done, std::uint64_t hits) const
    {
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        char eta[32] = "--";
        if (done > 0 && done < total_)
            std::snprintf(eta, sizeof(eta), "%.0fs",
                          elapsed / double(done) *
                              double(total_ - done));
        std::fprintf(stderr,
                     "\rcampaign: %llu/%llu tasks (%3.0f%%) | cache "
                     "%3.0f%% | ETA %-8s",
                     (unsigned long long)done,
                     (unsigned long long)total_,
                     100.0 * double(done) / double(total_),
                     done ? 100.0 * double(hits) / double(done) : 0.0,
                     eta);
    }

    std::uint64_t total_;
    std::chrono::steady_clock::time_point start_;
    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

std::uint64_t
microsSince(std::chrono::steady_clock::time_point t0)
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

CampaignEngine::CampaignEngine(CampaignSpec spec, CampaignOptions opts)
    : spec_(std::move(spec)), opts_(std::move(opts))
{
    mbias_assert(opts_.jobs >= 1, "campaign needs at least one job");
    mbias_assert(!opts_.resume || !opts_.outPath.empty(),
                 "--resume needs a result store path");
    // The JSONL record is a fixed flat schema with no per-rep arrays,
    // and the content address does not cover the loader's sp-align
    // override; campaigns using either must run storeless until the
    // store format grows those fields.
    mbias_assert(opts_.outPath.empty() ||
                     (!spec_.plan.samplesReps() &&
                      spec_.plan.kind != RepetitionPlan::Kind::BaselineOnly &&
                      spec_.spAlign == 0),
                 "rep-sampling / baseline-only / sp-aligned campaigns "
                 "do not persist result stores");
}

CampaignReport
CampaignEngine::run()
{
    const auto start = std::chrono::steady_clock::now();

    // Each run gets its own metrics registry so the report's snapshot
    // is exactly this campaign — nothing leaks across runs.
    obs::Registry metrics;
    obs::Tracer &tracer = obs::Tracer::global();
    const bool tracing = !opts_.tracePath.empty();
    if (tracing)
        tracer.start();

    const obs::Provenance provenance =
        obs::Provenance::capture(opts_.jobs);

    const std::vector<CampaignTask> tasks = spec_.expand();
    std::vector<std::string> keys;
    keys.reserve(tasks.size());
    for (const auto &t : tasks)
        keys.push_back(taskKey(spec_.experiment, t));
    metrics.counter("engine.tasks").add(tasks.size());

    std::unique_ptr<ResultStore> store;
    if (!opts_.outPath.empty()) {
        store = std::make_unique<ResultStore>(opts_.outPath, &metrics);
        if (opts_.resume)
            store->load();
        else
            store->reset();
        // Fresh stores (and pre-provenance legacy ones) get this
        // run's host setup as their header; a resumed store keeps
        // the header of the run that created it.
        if (store->headerProvenanceJson().empty())
            store->writeHeader(provenance);
    }

    // All workers materialize setups through the shared artifact
    // cache (unless disabled); its hit/miss/byte counters land in
    // this run's registry for the duration of the run.
    toolchain::ArtifactCache &artifacts =
        toolchain::ArtifactCache::global();
    if (opts_.artifactCache)
        artifacts.attachMetrics(&metrics);
    // The simulator's plan/trace/replay caches mirror their counters
    // the same way (sim.plan.*, sim.trace.*, sim.replay.*) regardless
    // of the artifact cache.
    sim::PlanCache::global().attachMetrics(&metrics);
    sim::TraceCache::global().attachMetrics(&metrics);
    sim::ReplayCache::global().attachMetrics(&metrics);
    // The caches are process-global and the registry is per-run:
    // detach on every exit path, before the registry dies.
    struct DetachMetrics
    {
        toolchain::ArtifactCache *cache;
        ~DetachMetrics()
        {
            if (cache)
                cache->attachMetrics(nullptr);
            sim::PlanCache::global().attachMetrics(nullptr);
            sim::TraceCache::global().attachMetrics(nullptr);
            sim::ReplayCache::global().attachMetrics(nullptr);
        }
    } detachMetrics{opts_.artifactCache ? &artifacts : nullptr};

    ThreadPool pool(opts_.jobs, &metrics);
    ResultCache cache(&metrics);
    std::vector<core::RunOutcome> results(tasks.size());
    // One runner per worker: with the shared artifact cache runners
    // are cheap handles; without it each keeps a private compile memo
    // that must stay on its own thread.
    std::vector<std::unique_ptr<core::ExperimentRunner>> runners(
        pool.jobs());
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> resumed{0};
    std::atomic<std::uint64_t> cacheHits{0};
    std::atomic<std::uint64_t> done{0};

    // Hot-path metric handles, resolved once (registry lookups take a
    // lock; Counter::add / Histogram::record do not).
    obs::Counter &cExecuted = metrics.counter("engine.executed");
    obs::Counter &cResumed = metrics.counter("engine.store_hits");
    obs::Histogram &hExecute = metrics.histogram("task.execute_us");
    obs::Histogram &hTask = metrics.histogram("task.total_us");

    ProgressMeter meter(opts_.progress, tasks.size(), done, cacheHits);

    pool.parallelFor(tasks.size(), [&](std::size_t i, unsigned w) {
        const auto taskStart = std::chrono::steady_clock::now();
        obs::ScopedSpan taskSpan("task", "campaign",
                                 "{\"task\":" + std::to_string(i) +
                                     "}");
        const CampaignTask &task = tasks[i];
        const std::string &key = keys[i];

        if (store) {
            if (const TaskRecord *rec = store->find(key)) {
                results[i] = rec->toOutcome();
                resumed.fetch_add(1, std::memory_order_relaxed);
                cResumed.add();
                done.fetch_add(1, std::memory_order_relaxed);
                return;
            }
        }
        if (cache.lookup(key, results[i])) {
            cacheHits.fetch_add(1, std::memory_order_relaxed);
            done.fetch_add(1, std::memory_order_relaxed);
            return;
        }

        if (!runners[w]) {
            obs::ScopedSpan span("runner-init", "campaign");
            runners[w] = std::make_unique<core::ExperimentRunner>(
                spec_.experiment);
            runners[w]->setMetrics(&metrics);
            runners[w]->setArtifactCache(
                opts_.artifactCache ? &artifacts : nullptr);
            if (spec_.spAlign != 0)
                runners[w]->setSpAlignOverride(spec_.spAlign);
        }
        const auto execStart = std::chrono::steady_clock::now();
        const TaskResult r = executeTask(*runners[w], task);
        hExecute.record(microsSince(execStart));
        executed.fetch_add(1, std::memory_order_relaxed);
        cExecuted.add();
        results[i] = r.outcome;
        cache.insert(key, r.outcome);
        if (store) {
            obs::ScopedSpan span("store-append", "campaign");
            store->append(TaskRecord::make(key, task, r.outcome,
                                           r.baseMetric,
                                           r.treatMetric));
        }
        hTask.record(microsSince(taskStart));
        done.fetch_add(1, std::memory_order_relaxed);
    });

    CampaignReport report;
    {
        obs::ScopedSpan span("aggregate", "campaign");
        if (results.size() >= 2) {
            core::BiasAnalyzer analyzer(0.01, opts_.confidence);
            if (opts_.resamples > 0)
                analyzer.withBootstrap(opts_.resamples, spec_.seed,
                                       opts_.jobs);
            report.bias =
                analyzer.aggregate(spec_.experiment, std::move(results));
        } else {
            // A bias report needs >= 2 setups for a spread/CI; a
            // one-task campaign (e.g. a single-cell sweep lowered by
            // the pipeline) just carries its outcome through.
            report.bias.specDescription = spec_.experiment.str();
            for (const auto &o : results)
                report.bias.speedups.add(o.speedup);
            report.bias.outcomes = std::move(results);
        }
    }
    report.stats.totalTasks = tasks.size();
    report.stats.executed = executed.load();
    report.stats.cacheHits = cache.hits();
    report.stats.resumedFromStore = resumed.load();
    report.stats.jobs = pool.jobs();
    report.stats.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    report.provenance = provenance;
    report.metrics = metrics.snapshot();
    // Fold in the process-wide lang metrics (asm.load, asm.assemble,
    // fuzz.generate): asm-manifest workloads assemble inside the
    // campaign's tasks but record into the global registry, and their
    // cost belongs in the report obs-summary prints.
    {
        const auto global = obs::Registry::global().snapshot();
        obs::MetricsSnapshot lang;
        const auto langKey = [](const std::string &k) {
            return k.rfind("asm.", 0) == 0 || k.rfind("fuzz.", 0) == 0;
        };
        for (const auto &[k, v] : global.counters)
            if (langKey(k))
                lang.counters[k] = v;
        for (const auto &[k, v] : global.histograms)
            if (langKey(k))
                lang.histograms[k] = v;
        report.metrics.merge(lang);
    }
    if (store)
        store->appendMetrics(report.metrics);
    if (tracing) {
        tracer.stop();
        if (!tracer.writeTo(opts_.tracePath))
            mbias_warn("cannot write trace to ", opts_.tracePath);
        else
            inform("trace written to " + opts_.tracePath +
                   " (open in Perfetto: https://ui.perfetto.dev)");
    }
    return report;
}

} // namespace mbias::campaign
