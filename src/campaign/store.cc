#include "campaign/store.hh"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string_view>

#include "base/hash.hh"
#include "base/logging.hh"

namespace mbias::campaign
{

namespace
{

void
requireStorableOrder(const toolchain::LinkOrder &order)
{
    mbias_assert(order.kind() != toolchain::LinkOrder::Kind::Explicit,
                 "explicit link orders have no stable content address; "
                 "campaigns must use as-given/alphabetical/seeded orders");
}

toolchain::LinkOrder
orderFromKind(int kind, std::uint64_t seed)
{
    using Kind = toolchain::LinkOrder::Kind;
    switch (Kind(kind)) {
      case Kind::AsGiven:
        return toolchain::LinkOrder::asGiven();
      case Kind::Alphabetical:
        return toolchain::LinkOrder::alphabetical();
      case Kind::Seeded:
        return toolchain::LinkOrder::shuffled(seed);
      case Kind::Explicit:
        break;
    }
    mbias_panic("unstorable link order kind ", kind);
}

/** Parses an unsigned integer token in @p base; the whole token must
 *  be consumed. */
bool
parseU64(std::string_view tok, std::uint64_t &out, int base)
{
    if (tok.empty())
        return false;
    const char *first = tok.data();
    const char *last = tok.data() + tok.size();
    const auto res = std::from_chars(first, last, out, base);
    return res.ec == std::errc() && res.ptr == last;
}

/**
 * Single-pass record parser.  Records keep the invariants that always
 * made plain scanning exact — each line is one *flat* JSON object (no
 * nesting), field names never occur as substrings of values, and
 * values contain no escapes — but where the old reader rescanned the
 * whole line once per field (sixteen passes of string::find), this
 * walks the line left to right exactly once and dispatches each
 * `"name":value` pair as it is encountered.  Field order is not
 * assumed, unknown names are skipped (forward compatibility), and a
 * record is valid only when every known field was seen.
 */
bool
parseRecord(const std::string &line, TaskRecord &out)
{
    // A record is only valid if the line is complete — a run killed
    // mid-append leaves a truncated last line with no closing brace.
    if (line.size() < 2 || line.front() != '{' || line.back() != '}')
        return false;
    TaskRecord r;
    unsigned seen = 0;
    const char *p = line.data() + 1;
    const char *end = line.data() + line.size() - 1; // the final '}'
    while (p < end) {
        if (*p == ',') {
            ++p;
            continue;
        }
        if (*p != '"')
            return false;
        const char *nameBeg = ++p;
        while (p < end && *p != '"')
            ++p;
        if (p >= end)
            return false;
        const std::string_view name(nameBeg, std::size_t(p - nameBeg));
        if (++p >= end || *p != ':')
            return false;
        ++p;
        std::string_view value;
        bool quoted = false;
        if (p < end && *p == '"') {
            quoted = true;
            const char *valBeg = ++p;
            while (p < end && *p != '"')
                ++p;
            if (p >= end)
                return false;
            value = std::string_view(valBeg, std::size_t(p - valBeg));
            ++p;
        } else {
            const char *valBeg = p;
            while (p < end && *p != ',')
                ++p;
            value = std::string_view(valBeg, std::size_t(p - valBeg));
        }

        bool ok = true;
        std::uint64_t v = 0;
        if (name == "key") {
            ok = quoted && value.size() == 16;
            r.key.assign(value);
            seen |= 1u << 0;
        } else if (name == "task") {
            ok = parseU64(value, r.taskIndex, 10);
            seen |= 1u << 1;
        } else if (name == "env") {
            ok = parseU64(value, r.envBytes, 10);
            seen |= 1u << 2;
        } else if (name == "link_kind") {
            ok = parseU64(value, v, 10);
            r.linkKind = int(v);
            seen |= 1u << 3;
        } else if (name == "link_seed") {
            ok = parseU64(value, r.linkSeed, 10);
            seen |= 1u << 4;
        } else if (name == "plan") {
            ok = parseU64(value, v, 10);
            r.planKind = int(v);
            seen |= 1u << 5;
        } else if (name == "reps") {
            ok = parseU64(value, v, 10);
            r.reps = unsigned(v);
            seen |= 1u << 6;
        } else if (name == "base_cycles") {
            ok = parseU64(value, r.baseCycles, 10);
            seen |= 1u << 7;
        } else if (name == "base_insts") {
            ok = parseU64(value, r.baseInsts, 10);
            seen |= 1u << 8;
        } else if (name == "base_result") {
            ok = parseU64(value, r.baseResult, 10);
            seen |= 1u << 9;
        } else if (name == "treat_cycles") {
            ok = parseU64(value, r.treatCycles, 10);
            seen |= 1u << 10;
        } else if (name == "treat_insts") {
            ok = parseU64(value, r.treatInsts, 10);
            seen |= 1u << 11;
        } else if (name == "treat_result") {
            ok = parseU64(value, r.treatResult, 10);
            seen |= 1u << 12;
        } else if (name == "base_metric") {
            ok = parseU64(value, r.baseMetricBits, 16);
            seen |= 1u << 13;
        } else if (name == "treat_metric") {
            ok = parseU64(value, r.treatMetricBits, 16);
            seen |= 1u << 14;
        } else if (name == "speedup") {
            ok = parseU64(value, r.speedupBits, 16);
            seen |= 1u << 15;
        }
        if (!ok)
            return false;
    }
    if (seen != 0xffffu)
        return false;
    out = std::move(r);
    return true;
}

} // namespace

std::string
taskKey(const core::ExperimentSpec &e, const CampaignTask &task)
{
    requireStorableOrder(task.setup.linkOrder);
    std::ostringstream os;
    os << "wl=" << e.workload << ";scale=" << e.workloadConfig.scale
       << ";wseed=" << e.workloadConfig.seed << ";m=" << e.machine.name
       << ";tm=" << (e.treatmentMachine ? e.treatmentMachine->name : "-")
       << ";base=" << e.baseline.str() << ";treat=" << e.treatment.str()
       << ";metric=" << int(e.metric) << ";env=" << task.setup.envBytes
       << ";link=" << task.setup.linkOrder.str()
       << ";plan=" << int(task.plan.kind) << ";reps=" << task.plan.reps;
    // The task seed only influences the outcome when the plan draws
    // per-run randomness from it; keying it unconditionally would
    // needlessly split addresses of identical Single-mode tasks.
    // (Single/AslrRandomized keys are byte-stable across this rule's
    // extension to the newer seed-consuming kinds — existing stores
    // stay resumable.)
    if (task.plan.consumesSeed())
        os << ";tseed=" << task.taskSeed;
    if (task.plan.kind == RepetitionPlan::Kind::NoisePaired)
        os << ";toff=" << task.plan.treatSeedOffset;
    return hex16(fnv1a(os.str()));
}

TaskRecord
TaskRecord::make(std::string key, const CampaignTask &task,
                 const core::RunOutcome &outcome, double base_metric,
                 double treat_metric)
{
    requireStorableOrder(task.setup.linkOrder);
    TaskRecord r;
    r.key = std::move(key);
    r.taskIndex = task.index;
    r.envBytes = task.setup.envBytes;
    r.linkKind = int(task.setup.linkOrder.kind());
    r.linkSeed = task.setup.linkOrder.seed();
    r.planKind = int(task.plan.kind);
    r.reps = task.plan.reps;
    if (task.plan.kind == RepetitionPlan::Kind::Single) {
        r.baseCycles = outcome.baseline.cycles();
        r.baseInsts = outcome.baseline.instructions();
        r.baseResult = outcome.baseline.result;
        r.treatCycles = outcome.treatment.cycles();
        r.treatInsts = outcome.treatment.instructions();
        r.treatResult = outcome.treatment.result;
    }
    r.baseMetricBits = std::bit_cast<std::uint64_t>(base_metric);
    r.treatMetricBits = std::bit_cast<std::uint64_t>(treat_metric);
    r.speedupBits = std::bit_cast<std::uint64_t>(outcome.speedup);
    return r;
}

core::RunOutcome
TaskRecord::toOutcome() const
{
    core::RunOutcome o;
    o.setup.envBytes = envBytes;
    o.setup.linkOrder = orderFromKind(linkKind, linkSeed);
    o.baseline.halted = o.treatment.halted = true;
    o.baseline.result = baseResult;
    o.treatment.result = treatResult;
    o.baseline.counters.set(sim::Counter::Cycles, baseCycles);
    o.baseline.counters.set(sim::Counter::Instructions, baseInsts);
    o.treatment.counters.set(sim::Counter::Cycles, treatCycles);
    o.treatment.counters.set(sim::Counter::Instructions, treatInsts);
    o.speedup = std::bit_cast<double>(speedupBits);
    return o;
}

std::string
TaskRecord::toJson() const
{
    std::ostringstream os;
    os << "{\"key\":\"" << key << "\",\"task\":" << taskIndex
       << ",\"env\":" << envBytes << ",\"link_kind\":" << linkKind
       << ",\"link_seed\":" << linkSeed << ",\"plan\":" << planKind
       << ",\"reps\":" << reps << ",\"base_cycles\":" << baseCycles
       << ",\"base_insts\":" << baseInsts
       << ",\"base_result\":" << baseResult
       << ",\"treat_cycles\":" << treatCycles
       << ",\"treat_insts\":" << treatInsts
       << ",\"treat_result\":" << treatResult << ",\"base_metric\":\""
       << hex16(baseMetricBits) << "\",\"treat_metric\":\""
       << hex16(treatMetricBits) << "\",\"speedup\":\""
       << hex16(speedupBits) << "\"}";
    return os.str();
}

bool
TaskRecord::fromJson(const std::string &line, TaskRecord &out)
{
    return parseRecord(line, out);
}

ResultCache::ResultCache(obs::Registry *metrics)
{
    if (metrics) {
        hitCounter_ = &metrics->counter("cache.hits");
        missCounter_ = &metrics->counter("cache.misses");
    }
}

bool
ResultCache::lookup(const std::string &key, core::RunOutcome &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        if (missCounter_)
            missCounter_->add();
        return false;
    }
    out = it->second;
    ++hits_;
    if (hitCounter_)
        hitCounter_->add();
    return true;
}

void
ResultCache::insert(const std::string &key, const core::RunOutcome &o)
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_[key] = o;
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

namespace
{

/** Store meta lines (header / metrics trailer) all share this prefix;
 *  they are intentionally unparseable as TaskRecords. */
constexpr const char *kMetaPrefix = "{\"mbias_";
constexpr const char *kHeaderTag = "\"mbias_store\"";
constexpr const char *kMetricsTag = "\"mbias_metrics\"";

bool
isMetaLine(const std::string &line)
{
    return line.rfind(kMetaPrefix, 0) == 0;
}

/** Extracts the raw `{...}` after `"provenance":` in a header line;
 *  empty when absent. */
std::string
provenanceOfHeader(const std::string &line)
{
    const std::string needle = "\"provenance\":";
    const auto at = line.find(needle);
    if (at == std::string::npos || line.back() != '}')
        return "";
    // The provenance object runs to the header's final closing brace.
    return line.substr(at + needle.size(),
                       line.size() - 1 - (at + needle.size()));
}

} // namespace

ResultStore::ResultStore(std::string path, obs::Registry *metrics)
    : path_(std::move(path))
{
    mbias_assert(!path_.empty(), "result store needs a path");
    if (metrics) {
        tornCounter_ = &metrics->counter("store.torn_lines");
        appendCounter_ = &metrics->counter("store.appends");
        loadedCounter_ = &metrics->counter("store.loaded");
    }
}

void
ResultStore::countTorn(std::uintmax_t byte_offset, const char *what)
{
    ++tornLines_;
    if (tornCounter_)
        tornCounter_->add();
    mbias_warn("result store ", path_, ": dropping ", what,
               " at byte offset ", byte_offset,
               " (torn tail of a killed run, or corruption)");
}

std::size_t
ResultStore::load()
{
    std::ifstream in(path_);
    if (!in)
        return 0;
    std::size_t read = 0;
    std::string line;
    std::uintmax_t offset = 0;
    while (std::getline(in, line)) {
        const std::uintmax_t lineStart = offset;
        offset += line.size() + 1; // +1: the newline getline consumed
        if (isMetaLine(line)) {
            if (line.back() != '}') { // killed while writing the line
                countTorn(lineStart, "truncated meta line");
                continue;
            }
            if (line.find(kHeaderTag) != std::string::npos)
                headerJson_ = provenanceOfHeader(line);
            continue; // metrics trailers are for obs-summary, not load
        }
        TaskRecord rec;
        if (!TaskRecord::fromJson(line, rec)) {
            countTorn(lineStart, "unparseable record");
            continue;
        }
        byKey_[rec.key] = std::move(rec);
        ++read;
    }
    if (loadedCounter_)
        loadedCounter_->add(read);
    return read;
}

void
ResultStore::reset()
{
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    byKey_.clear();
    headerJson_.clear();
}

void
ResultStore::writeHeader(const obs::Provenance &prov)
{
    std::lock_guard<std::mutex> lock(mutex_);
    mbias_assert(headerJson_.empty(),
                 "store ", path_, " already has a provenance header");
    headerJson_ = prov.toJson();
    const auto parent = std::filesystem::path(path_).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    std::ofstream out(path_, std::ios::app);
    mbias_assert(out.good(), "cannot write store header: ", path_);
    out << "{\"mbias_store\":1,\"provenance\":" << headerJson_
        << "}\n";
    out.flush();
    mbias_assert(out.good(), "store header write failed: ", path_);
}

void
ResultStore::appendMetrics(const obs::MetricsSnapshot &snap)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ofstream out(path_, std::ios::app);
    mbias_assert(out.good(), "cannot append to result store ", path_);
    out << "{\"mbias_metrics\":1,\"snapshot\":" << snap.toJson()
        << "}\n";
    out.flush();
    mbias_assert(out.good(), "metrics append failed: ", path_);
}

bool
ResultStore::headerProvenance(obs::Provenance &out) const
{
    return !headerJson_.empty() &&
           obs::Provenance::fromJson(headerJson_, out);
}

const TaskRecord *
ResultStore::find(const std::string &key) const
{
    auto it = byKey_.find(key);
    return it == byKey_.end() ? nullptr : &it->second;
}

void
ResultStore::append(const TaskRecord &rec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto parent = std::filesystem::path(path_).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    // A killed run can leave a torn partial line at the end of the
    // file; before the first append, truncate back to the last
    // complete record so the new record starts on its own line and
    // the healed file is pure JSONL again.
    if (!tailChecked_) {
        tailChecked_ = true;
        std::uintmax_t keep = 0;
        bool torn = false;
        {
            std::ifstream in(path_, std::ios::binary);
            char c;
            std::uintmax_t pos = 0;
            while (in && in.get(c)) {
                ++pos;
                if (c == '\n')
                    keep = pos;
            }
            torn = in.eof() && pos > keep;
        }
        if (torn) {
            countTorn(keep, "torn trailing line (healing file)");
            std::error_code ec;
            std::filesystem::resize_file(path_, keep, ec);
            mbias_assert(!ec, "cannot drop torn tail of ", path_);
        }
    }
    std::ofstream out(path_, std::ios::app);
    mbias_assert(out.good(), "cannot append to result store ", path_);
    out << rec.toJson() << "\n";
    out.flush();
    mbias_assert(out.good(), "write to result store failed: ", path_);
    if (appendCounter_)
        appendCounter_->add();
}

StoreSummary
summarizeStore(const std::string &path)
{
    StoreSummary s;
    s.path = path;
    std::ifstream in(path);
    if (!in)
        return s;
    std::string line;
    bool sawNewlineEnd = true;
    while (std::getline(in, line)) {
        sawNewlineEnd = !in.eof();
        if (isMetaLine(line)) {
            if (line.back() != '}') {
                ++s.tornLines;
                continue;
            }
            if (line.find(kHeaderTag) != std::string::npos)
                s.provenanceJson = provenanceOfHeader(line);
            else if (line.find(kMetricsTag) != std::string::npos)
                s.metricsJson = line;
            continue;
        }
        TaskRecord rec;
        if (TaskRecord::fromJson(line, rec))
            ++s.records;
        else
            ++s.tornLines;
    }
    // A file that does not end in a newline has a torn final line
    // even if the prefix happened to parse.
    if (!sawNewlineEnd && s.tornLines == 0)
        ++s.tornLines;
    return s;
}

std::string
StoreSummary::str() const
{
    std::ostringstream os;
    os << "store           : " << path << "\n"
       << "records         : " << records << "\n";
    if (tornLines)
        os << "torn lines      : " << tornLines << "  <-- corrupted "
           << "or killed mid-append\n";
    obs::Provenance prov;
    if (!provenanceJson.empty() &&
        obs::Provenance::fromJson(provenanceJson, prov))
        os << "provenance:\n" << prov.str();
    else
        os << "provenance      : (none recorded — store predates the "
           << "obs layer?)\n";
    if (!metricsJson.empty())
        os << "metrics (final snapshot of the writing run):\n"
           << obs::prettyJson(metricsJson) << "\n";
    else
        os << "metrics         : (no snapshot trailer — campaign "
           << "still running, or killed)\n";
    return os.str();
}

StoreColumns
readStoreColumns(const std::string &path, obs::Registry *metrics)
{
    StoreColumns cols;
    obs::Counter *torn = nullptr;
    obs::Counter *loaded = nullptr;
    if (metrics) {
        torn = &metrics->counter("store.torn_lines");
        loaded = &metrics->counter("store.loaded");
    }

    // Pass 1 (the only file pass): parse every line once, dedup by
    // content address with last-record-wins, matching what a resumed
    // ResultStore::load would serve.
    std::vector<TaskRecord> records;
    std::unordered_map<std::string, std::size_t> slotByKey;
    {
        std::ifstream in(path);
        if (!in)
            return cols;
        std::string line;
        while (std::getline(in, line)) {
            if (isMetaLine(line)) {
                if (line.back() != '}') {
                    ++cols.tornLines;
                    continue;
                }
                if (line.find(kHeaderTag) != std::string::npos)
                    cols.provenanceJson = provenanceOfHeader(line);
                continue;
            }
            TaskRecord rec;
            if (!TaskRecord::fromJson(line, rec)) {
                ++cols.tornLines;
                continue;
            }
            const auto [it, fresh] =
                slotByKey.try_emplace(rec.key, records.size());
            if (fresh)
                records.push_back(std::move(rec));
            else
                records[it->second] = std::move(rec);
        }
    }

    // Order rows by task index so the columns are independent of the
    // append order (resumed and work-stolen campaigns interleave).
    std::vector<std::size_t> order(records.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (records[a].taskIndex != records[b].taskIndex)
                      return records[a].taskIndex < records[b].taskIndex;
                  return records[a].key < records[b].key;
              });

    cols.taskIndex.reserve(records.size());
    cols.envBytes.reserve(records.size());
    cols.baseMetric.reserve(records.size());
    cols.treatMetric.reserve(records.size());
    cols.speedup.reserve(records.size());
    for (std::size_t i : order) {
        const TaskRecord &r = records[i];
        cols.taskIndex.push_back(r.taskIndex);
        cols.envBytes.push_back(r.envBytes);
        cols.baseMetric.push_back(
            std::bit_cast<double>(r.baseMetricBits));
        cols.treatMetric.push_back(
            std::bit_cast<double>(r.treatMetricBits));
        cols.speedup.push_back(std::bit_cast<double>(r.speedupBits));
    }
    if (loaded)
        loaded->add(cols.rows());
    if (torn && cols.tornLines)
        torn->add(cols.tornLines);
    return cols;
}

} // namespace mbias::campaign
