#include "campaign/threadpool.hh"

#include <algorithm>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace mbias::campaign
{

ThreadPool::ThreadPool(unsigned jobs) : jobs_(std::max(jobs, 1u)) {}

namespace
{

/** One worker's queue.  A plain mutex-guarded deque: campaign tasks
 *  are milliseconds each, so queue overhead is noise. */
struct WorkQueue
{
    std::mutex mutex;
    std::deque<std::size_t> tasks;

    bool
    popFront(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (tasks.empty())
            return false;
        out = tasks.front();
        tasks.pop_front();
        return true;
    }

    bool
    stealBack(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (tasks.empty())
            return false;
        out = tasks.back();
        tasks.pop_back();
        return true;
    }
};

} // namespace

void
ThreadPool::parallelFor(
    std::size_t count,
    const std::function<void(std::size_t, unsigned)> &fn)
{
    if (jobs_ == 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i, 0);
        return;
    }

    const unsigned workers =
        unsigned(std::min<std::size_t>(jobs_, count));
    std::vector<WorkQueue> queues(workers);
    for (std::size_t i = 0; i < count; ++i)
        queues[i % workers].tasks.push_back(i);

    auto work = [&](unsigned w) {
        std::size_t task;
        for (;;) {
            bool got = queues[w].popFront(task);
            // No new tasks are ever enqueued after the deal above, so
            // a full unsuccessful sweep over all queues means done.
            for (unsigned k = 1; !got && k < workers; ++k)
                got = queues[(w + k) % workers].stealBack(task);
            if (!got)
                return;
            fn(task, w);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        threads.emplace_back(work, w);
    work(0);
    for (auto &t : threads)
        t.join();
}

} // namespace mbias::campaign
