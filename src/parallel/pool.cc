#include "parallel/pool.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.hh"

namespace mbias::parallel
{

ThreadPool::ThreadPool(unsigned jobs, obs::Registry *metrics)
    : jobs_(std::max(jobs, 1u))
{
    if (metrics) {
        tasks_ = &metrics->counter("pool.tasks");
        steals_ = &metrics->counter("pool.steals");
        queueWait_ = &metrics->histogram("pool.queue_wait_us");
    }
}

namespace
{

/** One worker's queue.  A plain mutex-guarded deque: campaign tasks
 *  are milliseconds each, so queue overhead is noise. */
struct WorkQueue
{
    std::mutex mutex;
    std::deque<std::size_t> tasks;

    bool
    popFront(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (tasks.empty())
            return false;
        out = tasks.front();
        tasks.pop_front();
        return true;
    }

    bool
    stealBack(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (tasks.empty())
            return false;
        out = tasks.back();
        tasks.pop_back();
        return true;
    }
};

} // namespace

void
ThreadPool::parallelFor(
    std::size_t count,
    const std::function<void(std::size_t, unsigned)> &fn)
{
    if (jobs_ == 1 || count <= 1) {
        // Serial reference schedule: no queues, so no queue wait —
        // only the schedule-independent task count is recorded.
        for (std::size_t i = 0; i < count; ++i) {
            if (tasks_)
                tasks_->add();
            fn(i, 0);
        }
        return;
    }

    const unsigned workers =
        unsigned(std::min<std::size_t>(jobs_, count));
    std::vector<WorkQueue> queues(workers);
    for (std::size_t i = 0; i < count; ++i)
        queues[i % workers].tasks.push_back(i);

    obs::Tracer &tracer = obs::Tracer::global();
    auto work = [&](unsigned w) {
        obs::setThreadShard(w);
        std::size_t task;
        for (;;) {
            const auto waitStart = std::chrono::steady_clock::now();
            const std::uint64_t waitStartUs =
                tracer.active() ? tracer.nowUs() : 0;
            bool got = queues[w].popFront(task);
            bool stolen = false;
            // No new tasks are ever enqueued after the deal above, so
            // a full unsuccessful sweep over all queues means done.
            for (unsigned k = 1; !got && k < workers; ++k) {
                got = queues[(w + k) % workers].stealBack(task);
                stolen = got;
            }
            if (!got)
                return;
            if (queueWait_)
                queueWait_->record(std::uint64_t(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - waitStart)
                        .count()));
            if (stolen && steals_)
                steals_->add();
            if (tasks_)
                tasks_->add();
            if (tracer.active()) {
                obs::TraceEvent e;
                e.name = "queue-wait";
                e.cat = "pool";
                e.tsUs = waitStartUs;
                const std::uint64_t end = tracer.nowUs();
                e.durUs = end > waitStartUs ? end - waitStartUs : 0;
                e.tid = w;
                tracer.record(std::move(e));
            }
            fn(task, w);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        threads.emplace_back(work, w);
    work(0);
    for (auto &t : threads)
        t.join();
    // The calling thread doubled as worker 0; restore its default id.
    obs::setThreadShard(0);
}

} // namespace mbias::parallel
