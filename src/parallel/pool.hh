#ifndef MBIAS_PARALLEL_POOL_HH
#define MBIAS_PARALLEL_POOL_HH

#include <cstddef>
#include <functional>

#include "obs/metrics.hh"

namespace mbias::parallel
{

/**
 * A work-stealing pool for index-based task sets.
 *
 * The task indices [0, count) are dealt round-robin onto per-worker
 * deques; each worker drains its own deque from the front and, when
 * empty, steals from the back of a victim's.  Stealing only changes
 * *which worker* runs a task and *when* — never what the task
 * computes — so callers that key all task state by index (see
 * campaign::CampaignTask, stats::Engine's resample chunks) get
 * schedule-independent results.
 *
 * jobs == 1 runs every task inline on the calling thread with no
 * threads spawned: the serial reference schedule that parallel runs
 * must be bitwise-equal to.
 */
class ThreadPool
{
  public:
    /**
     * @p jobs is the worker count; 0 is treated as 1.  With a
     * @p metrics registry the pool records `pool.tasks` (schedule
     * independent), `pool.steals`, and the `pool.queue_wait_us`
     * histogram (both schedule dependent by nature), and each
     * dequeue emits a "queue-wait" span when tracing is active.
     */
    explicit ThreadPool(unsigned jobs,
                        obs::Registry *metrics = nullptr);

    unsigned jobs() const { return jobs_; }

    /**
     * Runs fn(task_index, worker_index) for every task index in
     * [0, count), each exactly once, and blocks until all are done.
     * worker_index is in [0, jobs()) and is stable for the duration
     * of one call — callers use it to give each worker private
     * mutable state (e.g. its own ExperimentRunner).
     *
     * @p fn must not throw; the library reports failures via
     * mbias_panic/mbias_fatal, which terminate.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t task,
                                              unsigned worker)> &fn);

  private:
    unsigned jobs_;
    obs::Counter *tasks_ = nullptr;  ///< resolved once; see ctor
    obs::Counter *steals_ = nullptr;
    obs::Histogram *queueWait_ = nullptr;
};

} // namespace mbias::parallel

#endif // MBIAS_PARALLEL_POOL_HH
