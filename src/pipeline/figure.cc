#include "pipeline/figure.hh"

#include "base/logging.hh"

namespace mbias::pipeline
{

FigureRegistry &
FigureRegistry::instance()
{
    static FigureRegistry registry;
    return registry;
}

void
FigureRegistry::add(FigureSpec spec)
{
    mbias_assert(!spec.id.empty(), "figure spec needs an id");
    mbias_assert(spec.render, "figure spec needs a render function");
    mbias_assert(!find(spec.id), "duplicate figure id '", spec.id, "'");
    specs_.push_back(std::move(spec));
}

const FigureSpec *
FigureRegistry::find(const std::string &id) const
{
    for (const auto &s : specs_)
        if (s.id == id || s.binaryName == id)
            return &s;
    return nullptr;
}

} // namespace mbias::pipeline
