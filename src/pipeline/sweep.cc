#include "pipeline/sweep.hh"

#include "base/logging.hh"

namespace mbias::pipeline
{

Sweep &
Sweep::linkOrderGrid(unsigned orders)
{
    return setups(linkOrderSetups(orders));
}

Sweep &
Sweep::envGrid(std::uint64_t max, std::uint64_t step, std::uint64_t min)
{
    return setups(envGridSetups(max, step, min));
}

Sweep &
Sweep::setups(std::vector<core::ExperimentSetup> s)
{
    explicit_ = std::move(s);
    seeded_.clear();
    space_.reset();
    sampled_ = 0;
    return *this;
}

Sweep &
Sweep::seededSetups(std::vector<campaign::SeededSetup> s)
{
    seeded_ = std::move(s);
    explicit_.clear();
    space_.reset();
    sampled_ = 0;
    return *this;
}

Sweep &
Sweep::randomized(core::SetupSpace space, unsigned n)
{
    space_ = space;
    sampled_ = n;
    explicit_.clear();
    seeded_.clear();
    return *this;
}

Sweep &
Sweep::seed(std::uint64_t s)
{
    seed_ = s;
    return *this;
}

Sweep &
Sweep::plan(campaign::RepetitionPlan p)
{
    plan_ = p;
    return *this;
}

Sweep &
Sweep::spAlign(std::uint64_t align)
{
    spAlign_ = align;
    return *this;
}

campaign::CampaignSpec
Sweep::toCampaignSpec() const
{
    campaign::CampaignSpec cspec;
    cspec.withExperiment(experiment_).withPlan(plan_).withSeed(seed_);
    if (spAlign_ != 0)
        cspec.withSpAlign(spAlign_);
    if (space_)
        cspec.withSpace(*space_, sampled_);
    else if (!seeded_.empty())
        cspec.withSeededSetups(seeded_);
    else if (!explicit_.empty())
        cspec.withSetups(explicit_);
    else
        mbias_fatal("sweep has no setups: call linkOrderGrid/envGrid/"
                    "setups/seededSetups/randomized");
    return cspec;
}

std::vector<core::ExperimentSetup>
sequentialSetups(const core::SetupSpace &space, unsigned n,
                 std::uint64_t seed)
{
    core::SetupRandomizer randomizer(space, seed);
    return randomizer.sample(n);
}

std::vector<core::ExperimentSetup>
linkOrderSetups(unsigned orders)
{
    mbias_assert(orders >= 1, "need at least one link order");
    std::vector<core::ExperimentSetup> out;
    out.reserve(orders);
    for (unsigned s = 0; s < orders; ++s) {
        core::ExperimentSetup setup;
        setup.linkOrder = s == 0 ? toolchain::LinkOrder::asGiven()
                                 : toolchain::LinkOrder::shuffled(s);
        out.push_back(setup);
    }
    return out;
}

std::vector<core::ExperimentSetup>
envGridSetups(std::uint64_t max, std::uint64_t step, std::uint64_t min)
{
    mbias_assert(step > 0, "env grid needs a positive step");
    std::vector<core::ExperimentSetup> out;
    for (std::uint64_t env = min; env <= max; env += step) {
        core::ExperimentSetup setup;
        setup.envBytes = env;
        out.push_back(setup);
    }
    return out;
}

} // namespace mbias::pipeline
