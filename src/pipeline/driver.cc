#include "pipeline/driver.hh"

#include <cstdio>

#include "base/logging.hh"
#include "obs/trace.hh"
#include "pipeline/context.hh"

namespace mbias::pipeline
{

ScopedTraceSession::ScopedTraceSession(std::string path)
    : path_(std::move(path))
{
    if (!path_.empty())
        obs::Tracer::global().start();
}

ScopedTraceSession::~ScopedTraceSession()
{
    if (path_.empty())
        return;
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.stop();
    if (!tracer.writeTo(path_))
        mbias_warn("cannot write trace to ", path_);
    else
        inform("trace written to " + path_ +
               " (open in Perfetto: https://ui.perfetto.dev)");
}

int
runFigure(const FigureSpec &spec, const PipelineOptions &opts)
{
    FigureContext ctx(opts);
    spec.render(ctx);
    return 0;
}

int
runAll(const PipelineOptions &opts)
{
    for (const FigureSpec &spec : FigureRegistry::instance().all()) {
        std::printf("---- %s ----\n", spec.binaryName.c_str());
        std::fflush(stdout);
        if (const int rc = runFigure(spec, opts))
            return rc;
    }
    return 0;
}

int
figureMain(const std::string &id, int argc, char **argv)
{
    const ParsedArgs parsed = parsePipelineArgs(argc, argv);
    applyLogging(parsed.options);
    const FigureSpec *spec = FigureRegistry::instance().find(id);
    if (!spec) {
        std::fprintf(stderr, "unknown figure id '%s'\n", id.c_str());
        return 2;
    }
    ScopedTraceSession trace(parsed.options.tracePath);
    return runFigure(*spec, parsed.options);
}

} // namespace mbias::pipeline
