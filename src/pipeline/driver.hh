#ifndef MBIAS_PIPELINE_DRIVER_HH
#define MBIAS_PIPELINE_DRIVER_HH

#include <string>

#include "pipeline/figure.hh"
#include "pipeline/options.hh"

namespace mbias::pipeline
{

/**
 * One process-wide Chrome-trace session: starts the global tracer on
 * construction (when @p path is nonempty) and stops + writes the file
 * on destruction.  Campaign/runner spans from every sweep executed in
 * between land in the one file — `--trace` behaves identically for a
 * single figure and for `mbias all`.
 */
class ScopedTraceSession
{
  public:
    explicit ScopedTraceSession(std::string path);
    ~ScopedTraceSession();

    ScopedTraceSession(const ScopedTraceSession &) = delete;
    ScopedTraceSession &operator=(const ScopedTraceSession &) = delete;

  private:
    std::string path_;
};

/** Renders one registered figure with @p opts.  Returns the process
 *  exit code (0 on success). */
int runFigure(const FigureSpec &spec, const PipelineOptions &opts);

/**
 * Renders every registered figure in registry order, printing the
 * `---- <binary name> ----` section header reproduce_all.sh has
 * always used between drivers.  Stops at the first failure.
 */
int runAll(const PipelineOptions &opts);

/**
 * Entry point of the thin per-figure wrapper binaries: parses the
 * shared flags (ignoring anything else, like the historical bench
 * scanners), applies logging, opens a trace session when requested,
 * and renders the figure registered under @p id.
 */
int figureMain(const std::string &id, int argc, char **argv);

} // namespace mbias::pipeline

#endif // MBIAS_PIPELINE_DRIVER_HH
