#ifndef MBIAS_PIPELINE_SWEEP_HH
#define MBIAS_PIPELINE_SWEEP_HH

#include <cstdint>
#include <vector>

#include "campaign/spec.hh"
#include "core/experiment.hh"
#include "core/setup.hh"

namespace mbias::pipeline
{

/**
 * One declarative factor sweep of a figure: an experiment plus the
 * setups to measure it in (a grid, an explicit list, or a randomized
 * sample) and the repetition plan per setup.  FigureContext::run()
 * lowers a Sweep onto a campaign::CampaignSpec and executes it.
 *
 * This class is the single home of the per-task seed derivations the
 * drivers used to hand-roll: link-order grids (as-given then
 * shuffled(1..n-1)), env grids, randomized samples (per-task streams
 * or the legacy sequential draw), and pinned per-cell noise seeds.
 * A figure's seeds are therefore identical no matter which entry
 * point runs it — the wrapper binary, `mbias fig`, or `mbias all`.
 */
class Sweep
{
  public:
    explicit Sweep(core::ExperimentSpec experiment)
        : experiment_(std::move(experiment))
    {
    }

    /** @name Setup sources (exactly one per sweep) @{ */

    /** The canonical link-order grid: setup 0 links as given, setup
     *  s >= 1 links shuffled with seed s. */
    Sweep &linkOrderGrid(unsigned orders);

    /** The canonical env grid: envBytes = min, min+step, ... <= max. */
    Sweep &envGrid(std::uint64_t max, std::uint64_t step,
                   std::uint64_t min = 0);

    /** Exactly these setups, in this order. */
    Sweep &setups(std::vector<core::ExperimentSetup> s);

    /** Explicit setups with pinned per-task seeds (figures whose
     *  noise seeds follow a formula of the grid indices). */
    Sweep &seededSetups(std::vector<campaign::SeededSetup> s);

    /** @p n setups sampled from @p space via per-task RNG streams
     *  keyed by (campaign seed, task index) — the campaign-native
     *  randomization (fig7 style). */
    Sweep &randomized(core::SetupSpace space, unsigned n);

    /** @} */

    /** Campaign root seed (sampled setups, derived task seeds). */
    Sweep &seed(std::uint64_t s);

    /** Per-setup repetition plan (default: one paired run). */
    Sweep &plan(campaign::RepetitionPlan p);

    /** Force the loader's initial stack alignment (interventions). */
    Sweep &spAlign(std::uint64_t align);

    /** The campaign this sweep lowers to. */
    campaign::CampaignSpec toCampaignSpec() const;

  private:
    core::ExperimentSpec experiment_;
    std::vector<core::ExperimentSetup> explicit_;
    std::vector<campaign::SeededSetup> seeded_;
    std::optional<core::SetupSpace> space_;
    unsigned sampled_ = 0;
    std::uint64_t seed_ = 42;
    campaign::RepetitionPlan plan_;
    std::uint64_t spAlign_ = 0;
};

/**
 * The legacy sequential sample: SetupRandomizer(space, seed) drawing
 * @p n setups from one RNG in order.  Kept as a named derivation so
 * the figures that historically sampled this way (fig10, table3) stay
 * byte-identical; new figures should prefer Sweep::randomized, whose
 * per-task streams are schedule-independent by construction.
 */
std::vector<core::ExperimentSetup>
sequentialSetups(const core::SetupSpace &space, unsigned n,
                 std::uint64_t seed);

/** The canonical link-order grid as a setup list (see
 *  Sweep::linkOrderGrid). */
std::vector<core::ExperimentSetup> linkOrderSetups(unsigned orders);

/** The canonical env grid as a setup list (see Sweep::envGrid). */
std::vector<core::ExperimentSetup>
envGridSetups(std::uint64_t max, std::uint64_t step,
              std::uint64_t min = 0);

} // namespace mbias::pipeline

#endif // MBIAS_PIPELINE_SWEEP_HH
