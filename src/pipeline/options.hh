#ifndef MBIAS_PIPELINE_OPTIONS_HH
#define MBIAS_PIPELINE_OPTIONS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mbias::pipeline
{

/**
 * The flag set every experiment entry point shares — the `mbias`
 * subcommands and each figure/table wrapper binary parse these with
 * the *same* code, so `--jobs/--seed/--resamples/--confidence/--trace/
 * --quiet/--verbose/--no-artifact-cache` behave identically
 * everywhere.
 *
 * Value flags are optionals: a figure (or subcommand) supplies its own
 * historical default when the user did not pass the flag, so the
 * defaults that differ by entry point (e.g. `mbias analyze` defaults
 * --resamples to 1000, figures to 0) keep their bytes while the
 * parsing stays shared.
 */
struct PipelineOptions
{
    /** Campaign worker threads; results are identical for any value. */
    unsigned jobs = 1;

    std::optional<std::uint64_t> seed;
    std::optional<int> resamples;
    std::optional<double> confidence;

    /** Chrome-trace JSON output path; empty disables tracing. */
    std::string tracePath;

    bool quiet = false;
    bool verbose = false;

    /** Off via --no-artifact-cache (the pre-cache benchmark mode). */
    bool artifactCache = true;

    std::uint64_t seedOr(std::uint64_t dflt) const
    {
        return seed.value_or(dflt);
    }
    int resamplesOr(int dflt) const { return resamples.value_or(dflt); }
    double confidenceOr(double dflt = 0.95) const
    {
        return confidence.value_or(dflt);
    }
};

/** parsePipelineArgs result: the shared flags plus everything else. */
struct ParsedArgs
{
    PipelineOptions options;

    /** Non-pipeline arguments in their original order (subcommand
     *  names, positional ids, caller-specific flags). */
    std::vector<std::string> rest;
};

/**
 * Extracts the shared pipeline flags from @p argv (excluding argv[0])
 * and returns them with the remaining arguments.  Flags take their
 * value as the next token (`--jobs 8`); a value flag at the end of the
 * line, or one followed by another `--flag`, is ignored — wrapper
 * scripts can pass harness-wide flag sets, matching the historical
 * leniency of the bench arg scanner.  Malformed values are fatal.
 */
ParsedArgs parsePipelineArgs(int argc, char **argv);

/** Applies --quiet/--verbose to the global logging switch. */
void applyLogging(const PipelineOptions &opts);

} // namespace mbias::pipeline

#endif // MBIAS_PIPELINE_OPTIONS_HH
