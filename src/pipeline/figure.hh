#ifndef MBIAS_PIPELINE_FIGURE_HH
#define MBIAS_PIPELINE_FIGURE_HH

#include <functional>
#include <string>
#include <vector>

namespace mbias::pipeline
{

class FigureContext;

/**
 * One registered figure/table of the reproduction: an identifier, a
 * one-line description for `mbias list`, and a render stage.  The
 * render function declares its factor sweeps as pipeline::Sweep
 * objects and executes them through FigureContext::run(), which
 * lowers each onto the campaign engine — so every figure gains
 * `--jobs`, the result/artifact caches, obs metrics/traces, and
 * provenance without owning any of that machinery.
 */
struct FigureSpec
{
    enum class Kind
    {
        Figure,
        Table,
        Ablation,
    };

    /** Registry id: "fig1".."fig11", "table1".."table3", "ablation". */
    std::string id;

    Kind kind = Kind::Figure;

    /** The pre-pipeline driver binary this spec replaced (the wrapper
     *  binary keeps the name, and `mbias all` prints it as the section
     *  header for reproduce_all.sh compatibility). */
    std::string binaryName;

    /** One line for `mbias list`. */
    std::string title;

    /** Renders the figure to stdout, byte-identical to the historical
     *  driver at default options. */
    std::function<void(FigureContext &)> render;
};

/**
 * The process-wide table of registered figures.  Figure definitions
 * live in bench/figures/ and are registered by an explicit
 * registerAll() call from each entry point (explicit registration —
 * not static initializers — so registration survives static-library
 * dead-stripping).
 */
class FigureRegistry
{
  public:
    static FigureRegistry &instance();

    /** Registers @p spec; duplicate ids are a bug. */
    void add(FigureSpec spec);

    /** Looks up by exact id ("fig5", "table2", "ablation") or by the
     *  legacy binary name; nullptr when unknown. */
    const FigureSpec *find(const std::string &id) const;

    /** All specs in registration (= presentation) order. */
    const std::vector<FigureSpec> &all() const { return specs_; }

  private:
    std::vector<FigureSpec> specs_;
};

} // namespace mbias::pipeline

#endif // MBIAS_PIPELINE_FIGURE_HH
