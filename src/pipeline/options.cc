#include "pipeline/options.hh"

#include <cstdlib>
#include <cstring>

#include "base/logging.hh"

namespace mbias::pipeline
{

namespace
{

/** True when @p tok looks like a flag rather than a value. */
bool
isFlag(const char *tok)
{
    return std::strncmp(tok, "--", 2) == 0;
}

std::uint64_t
parseUint(const char *flag, const char *value)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0')
        mbias_fatal("bad value for ", flag, ": '", value, "'");
    return v;
}

double
parseDouble(const char *flag, const char *value)
{
    char *end = nullptr;
    const double v = std::strtod(value, &end);
    if (end == value || *end != '\0')
        mbias_fatal("bad value for ", flag, ": '", value, "'");
    return v;
}

} // namespace

ParsedArgs
parsePipelineArgs(int argc, char **argv)
{
    ParsedArgs parsed;
    PipelineOptions &o = parsed.options;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        const bool hasValue = i + 1 < argc && !isFlag(argv[i + 1]);
        if (std::strcmp(a, "--quiet") == 0) {
            o.quiet = true;
        } else if (std::strcmp(a, "--verbose") == 0) {
            o.verbose = true;
        } else if (std::strcmp(a, "--no-artifact-cache") == 0) {
            o.artifactCache = false;
        } else if (std::strcmp(a, "--jobs") == 0) {
            if (hasValue)
                o.jobs = unsigned(parseUint(a, argv[++i]));
        } else if (std::strcmp(a, "--seed") == 0) {
            if (hasValue)
                o.seed = parseUint(a, argv[++i]);
        } else if (std::strcmp(a, "--resamples") == 0) {
            if (hasValue)
                o.resamples = int(parseUint(a, argv[++i]));
        } else if (std::strcmp(a, "--confidence") == 0) {
            if (hasValue)
                o.confidence = parseDouble(a, argv[++i]);
        } else if (std::strcmp(a, "--trace") == 0) {
            if (hasValue)
                o.tracePath = argv[++i];
        } else {
            parsed.rest.push_back(a);
        }
    }
    if (o.jobs < 1)
        mbias_fatal("--jobs must be >= 1");
    if (o.confidence &&
        (*o.confidence <= 0.0 || *o.confidence >= 1.0))
        mbias_fatal("--confidence must be in (0, 1)");
    return parsed;
}

void
applyLogging(const PipelineOptions &opts)
{
    if (opts.quiet)
        setLoggingEnabled(false);
    else if (opts.verbose)
        setLoggingEnabled(true);
}

} // namespace mbias::pipeline
