#include "pipeline/context.hh"

#include "campaign/engine.hh"

namespace mbias::pipeline
{

campaign::CampaignReport
FigureContext::run(const Sweep &sweep)
{
    campaign::CampaignOptions copts;
    copts.jobs = opts_.jobs;
    copts.artifactCache = opts_.artifactCache;
    copts.confidence = confidence();
    copts.resamples = resamples();
    // tracePath stays empty: the driver owns one trace session around
    // the whole figure, and engine spans land in whatever session is
    // active.  progress stays off: figure output is piped/diffed.
    campaign::CampaignEngine engine(sweep.toCampaignSpec(), copts);
    campaign::CampaignReport report = engine.run();
    wallSeconds_ += report.stats.wallSeconds;
    return report;
}

core::CausalAnalyzer::SweepFn
FigureContext::causalSweep()
{
    return [this](const core::ExperimentSpec &spec,
                  const std::vector<core::ExperimentSetup> &setups,
                  std::uint64_t sp_align) {
        Sweep sweep(spec);
        sweep.setups(setups)
            .plan({campaign::RepetitionPlan::Kind::BaselineOnly, 1});
        if (sp_align)
            sweep.spAlign(sp_align);
        campaign::CampaignReport report = run(sweep);
        std::vector<sim::RunResult> out;
        out.reserve(report.bias.outcomes.size());
        for (const auto &o : report.bias.outcomes)
            out.push_back(o.baseline);
        return out;
    };
}

} // namespace mbias::pipeline
