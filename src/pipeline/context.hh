#ifndef MBIAS_PIPELINE_CONTEXT_HH
#define MBIAS_PIPELINE_CONTEXT_HH

#include <cstdint>

#include "campaign/report.hh"
#include "core/causal.hh"
#include "pipeline/options.hh"
#include "pipeline/sweep.hh"

namespace mbias::pipeline
{

/**
 * What a figure's render stage runs against: the shared options plus
 * the lowering from declarative sweeps onto the campaign engine.
 * One context lives for the duration of one figure render; figures
 * may run any number of sweeps through it.
 */
class FigureContext
{
  public:
    explicit FigureContext(PipelineOptions opts)
        : opts_(std::move(opts))
    {
    }

    const PipelineOptions &options() const { return opts_; }

    unsigned jobs() const { return opts_.jobs; }

    /** The shared flags with this figure's historical defaults. */
    double confidence(double dflt = 0.95) const
    {
        return opts_.confidenceOr(dflt);
    }
    int resamples(int dflt = 0) const
    {
        return opts_.resamplesOr(dflt);
    }
    std::uint64_t seed(std::uint64_t dflt) const
    {
        return opts_.seedOr(dflt);
    }

    /**
     * Lowers @p sweep onto the campaign engine and runs it on the
     * context's worker budget.  Outcomes come back in setup order;
     * the report is bitwise-identical at any --jobs.  Campaigns run
     * storeless here (figures are cheap to recompute and their own
     * output files are the durable artifact); metrics/spans land in
     * the per-campaign report and any active trace session.
     */
    campaign::CampaignReport run(const Sweep &sweep);

    /**
     * A campaign-backed sweep executor for CausalAnalyzer: each
     * requested baseline sweep becomes a BaselineOnly campaign (with
     * the intervention's sp-align forwarded), so causal figures get
     * --jobs and caching while the analysis math is untouched.
     */
    core::CausalAnalyzer::SweepFn causalSweep();

    /** Campaign wall seconds accumulated across every run() so far. */
    double campaignWallSeconds() const { return wallSeconds_; }

  private:
    PipelineOptions opts_;
    double wallSeconds_ = 0.0;
};

} // namespace mbias::pipeline

#endif // MBIAS_PIPELINE_CONTEXT_HH
